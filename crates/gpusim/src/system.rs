//! The assembled GPU memory system.
//!
//! [`GpuSystem`] implements [`MemoryInterface`]: every warp memory
//! instruction is charged for address translation (per-SM L1 TLB, shared
//! L2 TLB behind a port, highly-threaded page-table walker whose accesses
//! go through the shared L2 cache and DRAM), for the data access itself
//! (L1 cache, crossbar, L2 slice, DRAM bank/bus), and — on first touch —
//! for demand paging over the system I/O bus, via whichever memory
//! manager the run is configured with.

use crate::config::{DemandPagingMode, ManagerKind, RunConfig};
use mosaic_core::{
    GpuMmuManager, ManagerStats, MemoryManager, MgmtEvent, MigratingManager, MosaicConfig,
    MosaicManager, PlacementMap, PlacementOutcome,
};
use mosaic_gpu::MemoryInterface;
use mosaic_iobus::IoBus;
use mosaic_mem::{Cache, CacheAccessUndo, Crossbar, Dram, Interconnect, FLIT_BYTES};
use mosaic_sim_core::{Counter, Cycle, Histogram, Ratio, SimRng, ThroughputPort};
use mosaic_telemetry::{emit, AccessTimeline, Event, StallBucket};
use mosaic_vm::{
    AppId, PageSize, PageTableSet, PageTableWalker, PhysAddr, Tlb, TlbLookupUndo, VirtAddr,
    VirtPageNum, WalkCache,
};

/// Cycles the baseline's full-TLB shootdown stalls the GPU (Figure 6a's
/// "TLB flush" segment). Only the baseline-coalescing ablation emits it.
const TLB_FLUSH_STALL: u64 = 1_000;

/// Lookahead isolation window. The simulator advances SMs smallest-clock-
/// first, but a single warp access *looks ahead* when it blocks on a long
/// event (a far-fault, a deeply-queued walk): its downstream stages start
/// far beyond every other SM's clock. Charging stateful (monotonic) port
/// models at such future times would make earlier-time requests from other
/// SMs queue behind them — inverted order. Stages starting more than this
/// many cycles after the instruction issued are therefore charged nominal
/// uncontended latencies instead of perturbing shared port state.
const LOOKAHEAD_WINDOW: u64 = 10_000;

/// Pages pulled in sequentially behind each demand fault when the run is
/// oversubscribed (UVM-style prefetch). Prefetches ride the bus after the
/// demand transfer and never trigger eviction.
const PREFETCH_DEGREE: u64 = 4;

/// Aggregated end-of-run statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemStats {
    /// L1 TLB hit rate over all SMs (hits, total).
    pub l1_tlb_hits: u64,
    /// L1 TLB probes over all SMs.
    pub l1_tlb_total: u64,
    /// Shared L2 TLB hits.
    pub l2_tlb_hits: u64,
    /// Shared L2 TLB probes.
    pub l2_tlb_total: u64,
    /// Full page-table walks performed.
    pub walks: u64,
    /// Mean end-to-end walk latency in cycles.
    pub walk_latency_mean: f64,
    /// L1 data-cache hit rate.
    pub l1_cache_hit_rate: f64,
    /// Shared L2 cache hit rate.
    pub l2_cache_hit_rate: f64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Far-faults (I/O-bus transfers).
    pub iobus_transfers: u64,
    /// Bytes moved over the I/O bus.
    pub iobus_bytes: u64,
    /// Mean cycles transfers waited for the bus (queueing only).
    pub iobus_queue_mean: f64,
    /// Worst bus-queueing wait in cycles.
    pub iobus_queue_max: u64,
    /// Mean pure transfer time (wire + fixed fault latency) in cycles.
    pub iobus_service_mean: f64,
    /// Worst pure transfer time in cycles.
    pub iobus_service_max: u64,
    /// Demand faults that re-touched a previously evicted page
    /// (thrashing indicator; only counted in oversubscribed runs).
    pub refaults: u64,
    /// Manager counters.
    pub manager: ManagerStats,
    /// Physical footprint at end of run (bytes).
    pub footprint_bytes: u64,
    /// Physical footprint of frames holding real application data
    /// (excludes pre-fragmentation-only frames).
    pub app_footprint_bytes: u64,
    /// Unique bytes touched by applications.
    pub touched_bytes: u64,
    /// Memory bloat (footprint / touched − 1).
    pub memory_bloat: f64,
    /// L1-missing warp accesses serviced by a remote device's memory
    /// (zero on a single GPU).
    pub remote_accesses: u64,
    /// Bytes carried over the inter-GPU interconnect (requests,
    /// responses, and page-copy payloads).
    pub interconnect_bytes: u64,
    /// Inter-GPU page migrations performed by the placement policy.
    pub fleet_migrations: u64,
    /// Read-only replications performed across devices.
    pub fleet_replications: u64,
    /// Bytes of migration + replication payload moved between devices.
    pub fleet_copy_bytes: u64,
}

impl SystemStats {
    /// L1 TLB hit fraction.
    pub fn l1_tlb_hit_rate(&self) -> f64 {
        if self.l1_tlb_total == 0 {
            1.0
        } else {
            self.l1_tlb_hits as f64 / self.l1_tlb_total as f64
        }
    }

    /// L2 TLB hit fraction.
    pub fn l2_tlb_hit_rate(&self) -> f64 {
        if self.l2_tlb_total == 0 {
            1.0
        } else {
            self.l2_tlb_hits as f64 / self.l2_tlb_total as f64
        }
    }
}

/// The full memory system of a simulated GPU fleet (one device in the
/// default configuration).
///
/// Per-SM structures (`l1_tlbs`, `l1_caches`) stay flat, indexed by the
/// *global* SM id (`gpu × sm_count + local_sm`), so the speculative
/// engine's borrow split is fleet-oblivious. Per-device structures are
/// vectors indexed by GPU; the flattened L2 slice/port vectors use
/// `gpu × channels + slice`. A single [`MemoryManager`] governs the
/// fleet's pooled physical memory, while [`PlacementMap`] decides which
/// device a 2MB region physically resides on and [`Interconnect`] charges
/// the cross-device traffic.
#[derive(Debug)]
pub struct GpuSystem {
    cfg: RunConfig,
    manager: Box<dyn MemoryManager>,
    l1_tlbs: Vec<Tlb>,
    l2_tlbs: Vec<Tlb>,
    l2_tlb_ports: Vec<ThroughputPort>,
    walkers: Vec<PageTableWalker>,
    walk_caches: Vec<Option<WalkCache>>,
    l1_caches: Vec<Cache>,
    l2_slices: Vec<Cache>,
    /// Per-slice L2 access ports, shared by data and page-table traffic —
    /// the contention that makes page walks expensive under load.
    l2_ports: Vec<ThroughputPort>,
    xbars: Vec<Crossbar>,
    drams: Vec<Dram>,
    iobuses: Vec<IoBus>,
    /// Which device owns (or replicates) each touched 2MB region.
    placement: PlacementMap,
    /// The inter-GPU link fabric (idle in single-GPU runs).
    interconnect: Interconnect,
    /// Bytes charged for interconnect traffic resolved on the nominal
    /// (lookahead-isolated) path, which bypasses [`Interconnect`] and its
    /// counters; folded into `interconnect_bytes` so the accounting
    /// covers every remote access regardless of contention state.
    icn_nominal_bytes: u64,
    /// Whole-GPU stall fence accumulated from compaction/shootdown events;
    /// the runner drains it after every SM step.
    pending_stall: Cycle,
    coalesce_events: Counter,
    splinter_events: Counter,
    /// Pages evicted and not yet refaulted (oversubscribed runs only);
    /// a demand fault hitting this set is thrashing evidence.
    evicted_pages: std::collections::BTreeSet<(AppId, VirtPageNum)>,
    /// Demand faults serviced (oversubscribed runs only).
    demand_faults: u64,
    /// Demand faults that re-touched an evicted page.
    refaults: u64,
}

/// Outcome of the SM-local translation prefix ([`GpuSystem::l1_translate`]):
/// the part of address translation that touches only per-SM state (the L1
/// TLB) and read-only shared state (the page tables). Everything past it —
/// L2 TLB port, walker, fault servicing — mutates shared structures and is
/// reachable only through the serial path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum L1Translate {
    /// L1 TLB hit (or ideal-TLB mode with the page resident): translation
    /// finished locally.
    Hit {
        /// Cycle the translation completes.
        done: Cycle,
        /// Translated physical address.
        phys: PhysAddr,
    },
    /// Ideal-TLB mode with the page not resident: a far-fault must be
    /// serviced (shared path).
    IdealFault,
    /// Real L1 TLB miss at `l1_done`: the shared L2 TLB / walker path
    /// must run.
    Miss {
        /// Cycle the L1 probe resolved (start of the shared path).
        l1_done: Cycle,
    },
}

impl GpuSystem {
    /// Builds the system for one run. Applies pre-fragmentation when the
    /// config asks for it (Mosaic only). A fleet of `n` GPUs weak-scales
    /// the machine: the manager pools `n ×` the per-device memory, and
    /// every per-device structure is replicated `n` times.
    pub fn new(cfg: RunConfig) -> Self {
        let sys = cfg.system;
        let gpus = cfg.fleet.gpus;
        let pool_bytes = sys.memory_bytes * gpus as u64;
        let mut manager: Box<dyn MemoryManager> = match cfg.manager {
            ManagerKind::GpuMmu4K => {
                Box::new(GpuMmuManager::new(pool_bytes, sys.dram.channels, PageSize::Base))
            }
            ManagerKind::GpuMmu2M => {
                Box::new(GpuMmuManager::new(pool_bytes, sys.dram.channels, PageSize::Large))
            }
            ManagerKind::Migrating(policy) => {
                Box::new(MigratingManager::new(pool_bytes, sys.dram.channels, policy))
            }
            ManagerKind::Mosaic(cac) => {
                let mut m = MosaicManager::new(MosaicConfig {
                    memory_bytes: pool_bytes,
                    channels: sys.dram.channels,
                    cac,
                });
                if let Some((index, occupancy)) = cfg.fragmentation {
                    let mut rng = SimRng::from_seed(cfg.seed).fork("fragmentation", 0);
                    let report = m.pre_fragment(index, occupancy, &mut rng);
                    assert_eq!(
                        report.shortfall(),
                        0,
                        "pre-fragmentation fell short: requested {} frames but the free list \
                         supplied only {} — this run's fragmentation index/occupancy exceeds \
                         the configured memory; its results would understate fragmentation",
                        report.requested_frames,
                        report.fragmented_frames
                    );
                }
                Box::new(m)
            }
        };
        // GPU-MMU ignores `fragmentation`: pre-fragmented frames only
        // matter for large-frame allocation, which it does not attempt at
        // 4KB. (The 2MB variant is never run fragmented in the paper.)
        let _ = &mut manager;
        GpuSystem {
            manager,
            l1_tlbs: (0..gpus * sys.sm_count).map(|_| Tlb::new(sys.l1_tlb)).collect(),
            l2_tlbs: (0..gpus).map(|_| Tlb::new(sys.l2_tlb)).collect(),
            l2_tlb_ports: (0..gpus)
                .map(|_| ThroughputPort::pipelined(sys.l2_tlb.latency.max(1), 1))
                .collect(),
            walkers: (0..gpus).map(|_| PageTableWalker::new(sys.walker_threads)).collect(),
            walk_caches: (0..gpus)
                .map(|_| {
                    (sys.walk_cache_entries > 0).then(|| WalkCache::new(sys.walk_cache_entries, 4))
                })
                .collect(),
            l1_caches: (0..gpus * sys.sm_count).map(|_| Cache::new(sys.l1_cache)).collect(),
            l2_slices: (0..gpus * sys.dram.channels)
                .map(|_| Cache::new(sys.l2_cache_slice))
                .collect(),
            l2_ports: (0..gpus * sys.dram.channels)
                .map(|_| ThroughputPort::pipelined(sys.l2_cache_slice.latency.max(1), 2))
                .collect(),
            xbars: (0..gpus).map(|_| Crossbar::new(sys.xbar)).collect(),
            drams: (0..gpus).map(|_| Dram::new(sys.dram)).collect(),
            iobuses: (0..gpus).map(|_| IoBus::new(sys.iobus)).collect(),
            placement: PlacementMap::new(gpus, cfg.fleet.placement),
            interconnect: Interconnect::new(cfg.fleet.interconnect, gpus),
            icn_nominal_bytes: 0,
            pending_stall: Cycle::ZERO,
            coalesce_events: Counter::new(),
            splinter_events: Counter::new(),
            evicted_pages: std::collections::BTreeSet::new(),
            demand_faults: 0,
            refaults: 0,
            cfg,
        }
    }

    /// The manager behind this system.
    pub fn manager(&self) -> &dyn MemoryManager {
        &*self.manager
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Registers an application and its en-masse reservation.
    pub fn launch_app(&mut self, asid: AppId, start: VirtPageNum, pages: u64) {
        self.manager.register_app(asid);
        self.manager.reserve(asid, start, pages);
        if self.cfg.paging == DemandPagingMode::PreloadedFree {
            // Everything becomes resident before cycle 0, free of charge.
            for i in 0..pages {
                let outcome = self
                    .manager
                    .touch(asid, VirtPageNum(start.raw() + i))
                    .expect("preload within reservation");
                self.count_events(&outcome.events);
            }
        }
    }

    /// The device that owns SM `sm` (global SM ids are dense per GPU).
    fn gpu_of(&self, sm: usize) -> usize {
        sm / self.cfg.system.sm_count
    }

    /// Deallocates pages on behalf of an application (kernel completion),
    /// applying splinter/compaction side effects at `now`. Placement
    /// forgets the spanned 2MB regions: the next touch re-establishes
    /// first-touch ownership. Compaction copies are charged to device 0
    /// (the pool's anchor device).
    pub fn deallocate(&mut self, now: Cycle, asid: AppId, start: VirtPageNum, pages: u64) {
        let events = self.manager.deallocate(asid, start, pages);
        // Unmapping requires invalidating the stale translations on every
        // SM (the runtime's unmap shootdown): both the base entries of
        // the freed pages and the large entries of the regions they
        // spanned.
        for i in 0..pages {
            let addr = VirtPageNum(start.raw() + i).addr();
            for tlb in self.l1_tlbs.iter_mut().chain(self.l2_tlbs.iter_mut()) {
                tlb.flush_base(asid, addr);
                if addr.base_page().is_large_aligned() || i == 0 {
                    tlb.flush_large(asid, addr);
                }
            }
        }
        if self.cfg.fleet.gpus > 1 {
            let first = VirtPageNum(start.raw()).large_page();
            let last = VirtPageNum(start.raw() + pages.saturating_sub(1)).large_page();
            for lpn in first.raw()..=last.raw() {
                self.placement.remove(asid, mosaic_vm::LargePageNum(lpn));
            }
        }
        let _migrations_done = self.apply_events(now, &events, 0);
    }

    /// Disjoint borrows for the speculative engine: each SM's private L1
    /// state (TLB and cache, mutably) alongside the shared page tables
    /// and config (immutably). The borrow split is what statically keeps
    /// speculation workers off the shared memory/VM stack — the manager,
    /// L2 structures, walker, ports, DRAM, and I/O bus are unreachable
    /// while the returned borrows live.
    pub(crate) fn speculation_split(
        &mut self,
    ) -> (&RunConfig, &PageTableSet, &mut [Tlb], &mut [Cache]) {
        (&self.cfg, self.manager.tables(), &mut self.l1_tlbs, &mut self.l1_caches)
    }

    /// Whether a whole-GPU stall fence is pending without draining it.
    /// The speculative engine asserts this stays false across committed
    /// local steps (only shared-path work can raise the fence).
    pub(crate) fn has_pending_stall(&self) -> bool {
        self.pending_stall != Cycle::ZERO
    }

    /// Commits one buffered recency/dirty classification from a
    /// speculative step, in serial heap order — the deferred twin of the
    /// inline `note_use` call in `warp_access_timed`.
    pub(crate) fn note_use_commit(&mut self, frame: mosaic_vm::PhysFrameNum, store: bool) {
        self.manager.note_use(frame, store);
    }

    /// Takes (and clears) the pending whole-GPU stall fence, if any.
    pub fn take_pending_stall(&mut self) -> Option<Cycle> {
        if self.pending_stall == Cycle::ZERO {
            None
        } else {
            let s = self.pending_stall;
            self.pending_stall = Cycle::ZERO;
            Some(s)
        }
    }

    fn count_events(&mut self, events: &[MgmtEvent]) {
        for e in events {
            match e {
                MgmtEvent::Coalesced { .. } => self.coalesce_events.inc(),
                MgmtEvent::Splintered { .. } => self.splinter_events.inc(),
                _ => {}
            }
        }
    }

    /// Applies management side effects; returns the cycle at which any
    /// triggered page migrations complete (allocations that depend on the
    /// compacted frames must wait for it). Shootdowns and flushes are
    /// fleet-wide (every device's TLBs drop the stale translations); DRAM
    /// page copies are charged to `gpu`'s channels.
    fn apply_events(&mut self, now: Cycle, events: &[MgmtEvent], gpu: usize) -> Cycle {
        self.count_events(events);
        let mut migrations_done = now;
        for e in events {
            match *e {
                MgmtEvent::Coalesced { .. } => {
                    // In-place coalescing: PTE-bit updates only; existing
                    // TLB entries stay valid (Section 4.3). Nothing to
                    // charge.
                }
                MgmtEvent::Splintered { asid, lpn } => {
                    // Flush the large-page entry from every TLB
                    // (Section 4.4).
                    let addr = lpn.addr();
                    for tlb in self.l1_tlbs.iter_mut().chain(self.l2_tlbs.iter_mut()) {
                        tlb.flush_large(asid, addr);
                    }
                }
                MgmtEvent::PageMigrated { channel, bulk, blocking } => {
                    let done = if bulk {
                        self.drams[gpu].bulk_page_copy(now, channel)
                    } else {
                        self.drams[gpu].narrow_page_copy(now, channel)
                    };
                    if blocking {
                        migrations_done = migrations_done.max(done);
                    }
                    if self.cfg.system.compaction_stalls_gpu {
                        self.pending_stall = self.pending_stall.max(done);
                    }
                }
                MgmtEvent::TlbFlushAll => {
                    for tlb in self.l1_tlbs.iter_mut().chain(self.l2_tlbs.iter_mut()) {
                        tlb.flush_all();
                    }
                    self.pending_stall = self.pending_stall.max(now + TLB_FLUSH_STALL);
                }
                MgmtEvent::TlbShootdown { asid, lpn } => {
                    // Targeted IPI-style shootdown: drop the region's base
                    // and large translations everywhere, then a brief
                    // synchronization stall.
                    emit(|| Event::Shootdown { asid: asid.0, lpn: lpn.raw(), cycle: now.as_u64() });
                    let large_addr = lpn.addr();
                    for tlb in self.l1_tlbs.iter_mut().chain(self.l2_tlbs.iter_mut()) {
                        tlb.flush_large(asid, large_addr);
                        for vpn in lpn.base_pages() {
                            tlb.flush_base(asid, vpn.addr());
                        }
                    }
                    self.pending_stall = self.pending_stall.max(now + TLB_FLUSH_STALL);
                }
                MgmtEvent::SmStallAll { cycles } => {
                    self.pending_stall = self.pending_stall.max(now + cycles);
                }
            }
        }
        migrations_done
    }

    /// Services a far-fault for `vpn` discovered at `now`; returns when
    /// the data is usable. Under oversubscription an out-of-memory touch
    /// evicts least-recently-used frames (teardown and write-back time
    /// land on `tl` as `Evict`/`Writeback`) and retries; each serviced
    /// fault then prefetches the next pages of the stream.
    fn handle_fault(
        &mut self,
        now: Cycle,
        gpu: usize,
        asid: AppId,
        vpn: VirtPageNum,
        tl: &mut AccessTimeline,
    ) -> Cycle {
        let oversubscribed = self.cfg.oversubscription.is_some();
        if oversubscribed {
            self.demand_faults += 1;
            if self.evicted_pages.remove(&(asid, vpn)) {
                self.refaults += 1;
            }
        }
        let mut start = now;
        let mut evict_cycles = 0u64;
        let mut wb_cycles = 0u64;
        let outcome = loop {
            match self.manager.touch(asid, vpn) {
                Ok(o) => break o,
                Err(e) => {
                    if !oversubscribed {
                        panic!(
                            "memory manager {} failed at {vpn}: {e} (configure more memory or \
                             fragmentation headroom for this experiment)",
                            self.manager.name()
                        );
                    }
                    // Out of memory is the expected regime here: free a
                    // frame's worth and retry once the pressure is
                    // relieved. `evict_pressure` panics if nothing can be
                    // freed, which bounds this loop.
                    let (relieved, teardown, wb) =
                        self.evict_pressure(start, mosaic_vm::LARGE_PAGE_SIZE, gpu);
                    start = relieved;
                    evict_cycles += teardown;
                    wb_cycles += wb;
                }
            }
        };
        // If servicing this fault required compaction, the page's frame
        // only becomes usable once the migration copies finish. The I/O
        // transfer overlaps the migration (it is charged at fault time,
        // keeping the bus port's arrivals in order); the warp waits for
        // whichever finishes last.
        let migrations_done = self.apply_events(start, &outcome.events, gpu);
        let done = if outcome.transfer_bytes > 0 && self.cfg.paging == DemandPagingMode::OnDemand {
            self.iobuses[gpu].transfer(start, outcome.transfer_bytes).max(migrations_done)
        } else {
            migrations_done
        };
        // Attribute the tail of the wait to the eviction machinery: the
        // fault completed exactly `teardown + writeback` cycles later
        // than it would have without pressure, and the tail of a warp's
        // wait is what its SM's stall windows actually observe.
        let pressure = evict_cycles + wb_cycles;
        if pressure > 0 {
            tl.mark(Cycle::new(done.as_u64() - pressure), StallBucket::Fault);
            tl.mark(Cycle::new(done.as_u64() - wb_cycles), StallBucket::Evict);
            tl.mark(done, StallBucket::Writeback);
        }
        emit(|| Event::FarFault {
            asid: asid.0,
            vpn: vpn.raw(),
            cycle: now.as_u64(),
            done: done.as_u64(),
        });
        if oversubscribed {
            self.prefetch_after(done, gpu, asid, vpn);
        }
        done
    }

    /// Relieves memory pressure discovered at `now`: asks the manager to
    /// evict least-recently-used frames worth at least `bytes`, applies
    /// the TLB teardown (shootdowns flow through the usual event path),
    /// and writes dirty pages back over the I/O bus. Returns the cycle at
    /// which the freed memory is reusable, plus the teardown and
    /// write-back cycle counts for stall attribution.
    ///
    /// # Panics
    ///
    /// Panics if the manager has nothing left to evict — the live working
    /// set exceeds GPU memory even with demand paging.
    pub fn evict_pressure(&mut self, now: Cycle, bytes: u64, gpu: usize) -> (Cycle, u64, u64) {
        let outcome = self.manager.evict_for(bytes);
        assert!(
            !outcome.is_empty(),
            "memory manager {} is out of memory with nothing evictable (the live working set \
             exceeds GPU memory; raise memory or lower the oversubscription factor)",
            self.manager.name()
        );
        self.apply_events(now, &outcome.events, gpu);
        if mosaic_telemetry::enabled() {
            let mut per_region: std::collections::BTreeMap<(u16, u64), u32> =
                std::collections::BTreeMap::new();
            for &(asid, vpn) in &outcome.evicted {
                *per_region.entry((asid.0, vpn.large_page().raw())).or_insert(0) += 1;
            }
            for ((asid, lpn), pages) in per_region {
                emit(|| Event::PageEvict { asid, lpn, pages, cycle: now.as_u64() });
            }
        }
        self.evicted_pages.extend(outcome.evicted.iter().copied());
        // The faulting warp rides out the shootdown fence it just raised
        // before its allocation can retry.
        let teardown = now + TLB_FLUSH_STALL;
        let mut done = teardown;
        let mut wb_cycles = 0;
        if outcome.writeback_bytes > 0 {
            let wb = self.iobuses[gpu].transfer(done, outcome.writeback_bytes);
            emit(|| Event::PageWriteback {
                bytes: outcome.writeback_bytes,
                cycle: done.as_u64(),
                done: wb.as_u64(),
            });
            wb_cycles = wb.since(done);
            done = wb;
        }
        (done, TLB_FLUSH_STALL, wb_cycles)
    }

    /// UVM-style sequential prefetch behind a demand fault: pulls up to
    /// [`PREFETCH_DEGREE`] following pages of the same reservation,
    /// stopping at the reservation edge or any other manager refusal —
    /// prefetches never evict. Throttled off while refault churn says the
    /// run is thrashing, when speculative pull-ins only cause more
    /// evictions. Prefetch transfers occupy the bus after the demand
    /// transfer but do not extend the faulting warp's wait.
    fn prefetch_after(&mut self, done: Cycle, gpu: usize, asid: AppId, vpn: VirtPageNum) {
        if self.thrashing() {
            return;
        }
        for i in 1..=PREFETCH_DEGREE {
            let next = VirtPageNum(vpn.raw() + i);
            if self.manager.tables().table(asid).is_some_and(|t| t.is_mapped(next)) {
                continue;
            }
            match self.manager.touch(asid, next) {
                Ok(o) => {
                    self.evicted_pages.remove(&(asid, next));
                    let _ = self.apply_events(done, &o.events, gpu);
                    if o.transfer_bytes > 0 {
                        self.iobuses[gpu].transfer(done, o.transfer_bytes);
                    }
                }
                Err(_) => break,
            }
        }
    }

    /// Evict-then-refault churn check: more than a quarter of demand
    /// faults re-touching evicted pages marks the run as thrashing.
    fn thrashing(&self) -> bool {
        self.refaults * 4 > self.demand_faults
    }

    /// Deterministic store classification for dirty tracking, keyed on
    /// the *virtual* page so the classification survives migration and
    /// eviction; ~1/4 of pages are write targets. `pub(crate)` so the
    /// speculative engine buffers the same classification it would have
    /// committed inline.
    pub(crate) fn is_store(asid: AppId, vpn: VirtPageNum) -> bool {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [u64::from(asid.0), vpn.raw()] {
            h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        }
        h & 3 == 0
    }

    /// One page-table memory access for the walker: optionally through the
    /// page-walk cache, then the shared L2 slice (behind its port), then
    /// DRAM. `issue_now` is the cycle the faulting instruction issued;
    /// stages starting beyond the lookahead window are charged nominal
    /// latencies (see [`LOOKAHEAD_WINDOW`]).
    #[allow(clippy::too_many_arguments)] // free function over disjoint borrows of self
    fn pt_access(
        walk_cache: &mut Option<WalkCache>,
        l2_slices: &mut [Cache],
        l2_ports: &mut [ThroughputPort],
        dram: &mut Dram,
        issue_now: Cycle,
        level: usize,
        addr: PhysAddr,
        start: Cycle,
    ) -> Cycle {
        // The page-walk cache holds upper-level PTEs only (as in Power et
        // al.): leaf PTEs are too numerous to cache there, which is
        // exactly why the paper's shared L2 TLB beats it.
        if level < 3 {
            if let Some(pwc) = walk_cache {
                if pwc.access(addr) {
                    return start + pwc.latency();
                }
            }
        }
        let contended = start.since(issue_now) <= LOOKAHEAD_WINDOW;
        let slice = dram.channel_of(addr.raw());
        let l2 = &mut l2_slices[slice];
        let l2_done =
            if contended { l2_ports[slice].acquire(start).done } else { start + l2.latency() };
        if l2.access(addr.raw(), false) {
            l2_done
        } else if contended {
            dram.access(l2_done, addr.raw())
        } else {
            l2_done + dram.uncontended_latency()
        }
    }

    /// The SM-local translation prefix: ideal-TLB residency check or the
    /// per-SM L1 TLB probe, shared verbatim by the serial path
    /// ([`GpuSystem::translate`]) and the speculative engine. Takes
    /// disjoint borrows instead of `&mut self` so speculation workers can
    /// call it while the shared memory/VM stack stays untouched; `undo`
    /// (speculative callers only) journals the TLB probe for exact
    /// rollback. Marks `tl` and emits exactly as the serial path does.
    #[allow(clippy::too_many_arguments)] // free function over disjoint borrows of self
    pub(crate) fn l1_translate(
        ideal: bool,
        tables: &PageTableSet,
        l1: &mut Tlb,
        now: Cycle,
        sm: usize,
        asid: AppId,
        addr: VirtAddr,
        tl: &mut AccessTimeline,
        undo: Option<&mut Vec<TlbLookupUndo>>,
    ) -> L1Translate {
        let vpn = addr.base_page();
        if ideal {
            // Every request is an L1 TLB hit; only residency is enforced.
            if tables.table(asid).is_none_or(|t| !t.is_mapped(vpn)) {
                return L1Translate::IdealFault;
            }
            tl.mark(now + 1, StallBucket::TlbHit);
            let t = tables
                .table(asid)
                .expect("app registered")
                .translate(addr)
                .expect("mapped page translates");
            return L1Translate::Hit {
                done: now + 1,
                phys: PhysAddr(t.frame.addr().raw() + addr.base_offset()),
            };
        }

        // L1 TLB.
        let l1_done = now + l1.latency();
        let l1_hit = match undo {
            Some(journal) => l1.lookup_logged(asid, addr, journal).is_hit(),
            None => l1.lookup(asid, addr).is_hit(),
        };
        emit(|| Event::TlbLookup {
            level: 1,
            sm: sm as u32,
            asid: asid.0,
            cycle: now.as_u64(),
            hit: l1_hit,
        });
        if l1_hit {
            tl.mark(l1_done, StallBucket::TlbHit);
            let t = tables
                .table(asid)
                .expect("app registered")
                .translate(addr)
                .expect("TLB hit implies resident mapping");
            return L1Translate::Hit {
                done: l1_done,
                phys: PhysAddr(t.frame.addr().raw() + addr.base_offset()),
            };
        }
        L1Translate::Miss { l1_done }
    }

    /// The SM-local data-access prefix: the per-SM L1 cache probe, shared
    /// verbatim by the serial path ([`GpuSystem::data_access`]) and the
    /// speculative engine. Returns `Ok(done)` on an L1 hit (access
    /// complete, `tl` marked) or `Err(l1_done)` on a miss (the shared
    /// crossbar/L2/DRAM path must run from `l1_done`). `undo` journals
    /// the probe for speculative rollback.
    pub(crate) fn l1_data(
        l1: &mut Cache,
        start: Cycle,
        phys: PhysAddr,
        tl: &mut AccessTimeline,
        undo: Option<&mut Vec<CacheAccessUndo>>,
    ) -> Result<Cycle, Cycle> {
        let l1_done = start + l1.latency();
        let hit = match undo {
            Some(journal) => l1.access_logged(phys.raw(), false, journal),
            None => l1.access(phys.raw(), false),
        };
        if hit {
            tl.mark(l1_done, StallBucket::Cache);
            Ok(l1_done)
        } else {
            Err(l1_done)
        }
    }

    /// Translates `addr` for SM `sm`, returning the cycle translation
    /// completes, the physical address, and whether a far-fault was taken
    /// (the data access then bypasses contended ports: its start time sits
    /// beyond every other SM's clock). Faults are resolved inline. The
    /// translation's cycles are recorded on `tl` (TLB hit vs. walk vs.
    /// fault) for stall attribution.
    fn translate(
        &mut self,
        now: Cycle,
        sm: usize,
        asid: AppId,
        addr: VirtAddr,
        tl: &mut AccessTimeline,
    ) -> (Cycle, PhysAddr, bool) {
        let vpn = addr.base_page();
        let gpu = self.gpu_of(sm);
        let l1_done = match Self::l1_translate(
            self.cfg.system.ideal_tlb,
            self.manager.tables(),
            &mut self.l1_tlbs[sm],
            now,
            sm,
            asid,
            addr,
            tl,
            None,
        ) {
            L1Translate::Hit { done, phys } => return (done, phys, false),
            L1Translate::IdealFault => {
                let done = self.handle_fault(now, gpu, asid, vpn, tl);
                tl.mark(done, StallBucket::Fault);
                tl.mark(done + 1, StallBucket::TlbHit);
                let t = self
                    .manager
                    .tables()
                    .table(asid)
                    .expect("app registered")
                    .translate(addr)
                    .expect("resident after fault");
                return (done + 1, PhysAddr(t.frame.addr().raw() + addr.base_offset()), true);
            }
            L1Translate::Miss { l1_done } => l1_done,
        };

        // The device's shared L2 TLB, behind its port. A zero-capacity L2
        // TLB (the page-walk-cache ablation's configuration) is skipped
        // entirely: misses go straight to the walker.
        let has_l2_tlb =
            self.cfg.system.l2_tlb.base_entries + self.cfg.system.l2_tlb.large_entries > 0;
        let l2_done =
            if has_l2_tlb { self.l2_tlb_ports[gpu].acquire(l1_done).done } else { l1_done };
        if has_l2_tlb {
            let l2_hit = self.l2_tlbs[gpu].lookup(asid, addr).is_hit();
            emit(|| Event::TlbLookup {
                level: 2,
                sm: sm as u32,
                asid: asid.0,
                cycle: l1_done.as_u64(),
                hit: l2_hit,
            });
            if l2_hit {
                tl.mark(l2_done, StallBucket::TlbHit);
                let t = self
                    .manager
                    .tables()
                    .table(asid)
                    .expect("app registered")
                    .translate(addr)
                    .expect("L2 TLB hit implies resident mapping");
                self.l1_tlbs[sm].fill(asid, addr, t.size);
                return (l2_done, PhysAddr(t.frame.addr().raw() + addr.base_offset()), false);
            }
        }

        // Page walk (Figure 2: the device's walker accesses go through
        // its own L2$/DRAM — page tables are replicated per device).
        let path = self.manager.tables().table(asid).expect("app registered").walk_path(addr);
        let ch = self.cfg.system.dram.channels;
        let walk_cache = &mut self.walk_caches[gpu];
        let l2_slices = &mut self.l2_slices[gpu * ch..(gpu + 1) * ch];
        let l2_ports = &mut self.l2_ports[gpu * ch..(gpu + 1) * ch];
        let dram = &mut self.drams[gpu];
        let out = self.walkers[gpu].walk(l2_done, asid, vpn, path, |level, pte, t| {
            Self::pt_access(walk_cache, l2_slices, l2_ports, dram, now, level, pte, t)
        });
        let mut ready = out.done;
        tl.mark(ready, StallBucket::TlbWalk);

        // The walk may discover a not-present page: far-fault.
        let mapped = self.manager.tables().table(asid).is_some_and(|t| t.translate(addr).is_ok());
        let faulted = !mapped;
        if faulted {
            ready = self.handle_fault(ready, gpu, asid, vpn, tl);
            tl.mark(ready, StallBucket::Fault);
        }
        let t = self
            .manager
            .tables()
            .table(asid)
            .expect("app registered")
            .translate(addr)
            .expect("resident after fault");
        self.l2_tlbs[gpu].fill(asid, addr, t.size);
        self.l1_tlbs[sm].fill(asid, addr, t.size);
        (ready, PhysAddr(t.frame.addr().raw() + addr.base_offset()), faulted)
    }

    /// Uncontended interconnect traversal time from `from` to `to` (the
    /// lookahead-isolation twin of [`Interconnect::traverse`]).
    fn nominal_hop_cycles(&self, from: usize, to: usize) -> u64 {
        let icfg = self.cfg.fleet.interconnect;
        icfg.topology.hops(from, to, self.cfg.fleet.gpus) * icfg.link_latency.max(1)
    }

    /// Sends one request flit from `from` to `to` on the nominal path:
    /// same per-link byte accounting as [`Interconnect::traverse`], no
    /// port-state perturbation.
    fn nominal_traverse(&mut self, now: Cycle, from: usize, to: usize) -> Cycle {
        let icfg = self.cfg.fleet.interconnect;
        self.icn_nominal_bytes += icfg.topology.hops(from, to, self.cfg.fleet.gpus) * FLIT_BYTES;
        now + self.nominal_hop_cycles(from, to)
    }

    /// Moves one 2MB page payload from device `from` to device `to` over
    /// the interconnect (migration or replication); returns the cycle the
    /// last flit lands. Beyond the lookahead window the wire time is
    /// charged nominally without perturbing link state.
    fn page_copy(&mut self, now: Cycle, contended: bool, from: usize, to: usize) -> Cycle {
        if contended {
            self.interconnect.transfer(now, from, to, mosaic_vm::LARGE_PAGE_SIZE)
        } else {
            let icfg = self.cfg.fleet.interconnect;
            let flits = mosaic_vm::LARGE_PAGE_SIZE.div_ceil(FLIT_BYTES);
            let hops = icfg.topology.hops(from, to, self.cfg.fleet.gpus);
            self.icn_nominal_bytes += hops * flits * FLIT_BYTES;
            now + self.nominal_hop_cycles(from, to) + (flits - 1) * icfg.cycles_per_flit.max(1)
        }
    }

    /// Region-granular (2 MB) store classification for placement.
    /// [`Self::is_store`] hashes per base page (~1/4 of pages), so any
    /// densely-touched region would be marked written almost immediately
    /// and `replicate-read-only` would never fire. Placement instead
    /// models buffers whose access type is uniform at region granularity:
    /// ~1/4 of 2 MB regions are write targets, the rest stay read-only.
    fn region_has_stores(asid: AppId, lpn: mosaic_vm::LargePageNum) -> bool {
        // Same FNV fold as `is_store`, over the region number plus a tag
        // so the two classifications stay statistically independent.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [u64::from(asid.0), lpn.0, 0x2b00] {
            h = (h ^ w).wrapping_mul(0x100_0000_01b3);
        }
        h & 3 == 0
    }

    /// Resolves which device services an L1-missing access under the
    /// fleet's placement policy, charging interconnect time for remote
    /// requests and for migration/replication payloads. Returns the
    /// servicing device and the cycle the request is available there.
    /// Serial-path only: placement counters advance in heap order.
    fn place(
        &mut self,
        now: Cycle,
        contended: bool,
        gpu: usize,
        asid: AppId,
        addr: VirtAddr,
        tl: &mut AccessTimeline,
    ) -> (usize, Cycle) {
        let store = Self::region_has_stores(asid, addr.large_page());
        match self.placement.access(asid, addr.large_page(), gpu, store) {
            PlacementOutcome::Local => (gpu, now),
            PlacementOutcome::Remote { owner } => {
                let at = if contended {
                    self.interconnect.traverse(now, gpu, owner)
                } else {
                    self.nominal_traverse(now, gpu, owner)
                };
                tl.mark(at, StallBucket::Remote);
                (owner, at)
            }
            PlacementOutcome::Migrate { from } | PlacementOutcome::Replicate { from } => {
                let at = self.page_copy(now, contended, from, gpu);
                tl.mark(at, StallBucket::Migrate);
                (gpu, at)
            }
        }
    }

    /// Charges the data access for `phys` from SM `sm` starting at
    /// `start`, for an instruction issued at `issue_now` (lookahead
    /// isolation applies beyond the window). Cache and DRAM time is
    /// recorded on `tl`, with DRAM split into queueing vs. service. Past
    /// the private L1, a fleet run routes the access to whichever device
    /// the placement policy says owns the 2MB region.
    #[allow(clippy::too_many_arguments)] // the serial memory path's one entry
    fn data_access(
        &mut self,
        issue_now: Cycle,
        start: Cycle,
        sm: usize,
        asid: AppId,
        addr: VirtAddr,
        phys: PhysAddr,
        bypass: bool,
        tl: &mut AccessTimeline,
    ) -> Cycle {
        let l1_done = match Self::l1_data(&mut self.l1_caches[sm], start, phys, tl, None) {
            Ok(done) => return done,
            Err(l1_done) => l1_done,
        };
        let gpu = self.gpu_of(sm);
        let contended = !bypass && start.since(issue_now) <= LOOKAHEAD_WINDOW;
        let (home, at_home) = if self.cfg.fleet.gpus > 1 {
            self.place(l1_done, contended, gpu, asid, addr, tl)
        } else {
            (gpu, l1_done)
        };
        let ch = self.cfg.system.dram.channels;
        let partition = self.drams[home].channel_of(phys.raw());
        let at_partition = if contended {
            self.xbars[home].traverse(at_home, partition)
        } else {
            at_home + self.cfg.system.xbar.latency
        };
        let slice = home * ch + partition;
        let l2 = &mut self.l2_slices[slice];
        let l2_done = if contended {
            self.l2_ports[slice].acquire(at_partition).done
        } else {
            at_partition + l2.latency()
        };
        tl.mark(l2_done, StallBucket::Cache);
        let mut done = if l2.access(phys.raw(), false) {
            l2_done
        } else if contended {
            let (done, service, _row_hit) = self.drams[home].access_timed(l2_done, phys.raw());
            // Whatever precedes the pure service portion is queueing.
            tl.mark(Cycle::new(done.as_u64().saturating_sub(service)), StallBucket::DramQueue);
            tl.mark(done, StallBucket::DramService);
            done
        } else {
            let done = l2_done + self.drams[home].uncontended_latency();
            tl.mark(done, StallBucket::DramService);
            done
        };
        if home != gpu {
            // The response rides the interconnect back to the requester.
            done = if contended {
                self.interconnect.traverse(done, home, gpu)
            } else {
                self.nominal_traverse(done, home, gpu)
            };
            tl.mark(done, StallBucket::Remote);
        }
        done
    }

    /// Sweeps the whole system's invariants into a fresh report: the
    /// manager's own audit (frame conservation, ownership agreement,
    /// coalesced-region geometry) plus TLB coherence — every cached
    /// translation, in every per-SM L1 TLB and the shared L2 TLB, must be
    /// backed by a live page-table entry of the matching page size.
    ///
    /// Side-effect free: audited and unaudited runs of the same seed are
    /// bit-identical. The runner calls this every `audit_every` cycles and
    /// panics on the first violation (see [`mosaic_sim_core::AuditReport`]).
    pub fn audit(&self) -> mosaic_sim_core::AuditReport {
        use std::fmt::Write as _;
        let mut report = mosaic_sim_core::AuditReport::new();
        self.manager.audit(&mut report);
        let tables = self.manager.tables();
        // One name buffer reused across the sweep: a clean audit performs
        // no per-TLB allocation (violation messages still format lazily).
        let mut name = String::new();
        for (sm, tlb) in self.l1_tlbs.iter().enumerate() {
            name.clear();
            let _ = write!(name, "l1-tlb[{sm}]");
            Self::audit_tlb(&mut report, &name, tlb, tables);
        }
        for (gpu, tlb) in self.l2_tlbs.iter().enumerate() {
            name.clear();
            let _ = write!(name, "l2-tlb[{gpu}]");
            Self::audit_tlb(&mut report, &name, tlb, tables);
        }
        // Placement ownership is unique by construction (one owner per
        // region; replicas never include the owner) — re-checked here so
        // a future policy cannot silently violate residency.
        for (asid, lpn, owner) in self.placement.placed() {
            report.check("placement", owner < self.cfg.fleet.gpus, || {
                format!("region {asid}/{lpn} owned by out-of-fleet device {owner}")
            });
        }
        report
    }

    /// Checks that every translation cached in `tlb` is backed by a live
    /// page-table entry of the matching page size.
    fn audit_tlb(
        report: &mut mosaic_sim_core::AuditReport,
        name: &str,
        tlb: &Tlb,
        tables: &mosaic_vm::PageTableSet,
    ) {
        for (asid, page, size) in tlb.entries() {
            match size {
                PageSize::Base => report.check(
                    name,
                    tables.table(asid).is_some_and(|t| t.is_mapped(VirtPageNum(page))),
                    || {
                        format!(
                            "caches a base translation for {asid} page {page:#x} \
                             with no live page-table entry"
                        )
                    },
                ),
                PageSize::Large => report.check(
                    name,
                    tables
                        .table(asid)
                        .is_some_and(|t| t.is_coalesced(mosaic_vm::LargePageNum(page))),
                    || {
                        format!(
                            "caches a large translation for {asid} region {page:#x} \
                             that is not coalesced in the page table"
                        )
                    },
                ),
            }
        }
    }

    /// Collects the end-of-run statistics.
    pub fn stats(&self) -> SystemStats {
        let mut l1_hits = 0;
        let mut l1_total = 0;
        for t in &self.l1_tlbs {
            l1_hits += t.hit_rate().hits();
            l1_total += t.hit_rate().total();
        }
        let mut l1c_hits = 0;
        let mut l1c_total = 0;
        for c in &self.l1_caches {
            l1c_hits += c.hit_rate().hits();
            l1c_total += c.hit_rate().total();
        }
        let mut l2c_hits = 0;
        let mut l2c_total = 0;
        for c in &self.l2_slices {
            l2c_hits += c.hit_rate().hits();
            l2c_total += c.hit_rate().total();
        }
        // Per-device structures aggregate across the fleet (a fleet of
        // one reduces to the single device's own counters exactly).
        let mut l2_tlb = Ratio::default();
        for t in &self.l2_tlbs {
            l2_tlb.merge(&t.hit_rate());
        }
        let mut walks = 0;
        let mut walk_latency = Histogram::default();
        for w in &self.walkers {
            walks += w.walks();
            walk_latency.merge(w.latency());
        }
        let mut row_hits = Ratio::default();
        for d in &self.drams {
            row_hits.merge(&d.row_hit_rate());
        }
        let mut iobus_transfers = 0;
        let mut iobus_bytes = 0;
        let mut iobus_queue = Histogram::default();
        let mut iobus_service = Histogram::default();
        for b in &self.iobuses {
            iobus_transfers += b.transfers();
            iobus_bytes += b.bytes();
            iobus_queue.merge(b.queue());
            iobus_service.merge(b.service());
        }
        let p = self.placement.stats();
        SystemStats {
            l1_tlb_hits: l1_hits,
            l1_tlb_total: l1_total,
            l2_tlb_hits: l2_tlb.hits(),
            l2_tlb_total: l2_tlb.total(),
            walks,
            walk_latency_mean: walk_latency.mean(),
            l1_cache_hit_rate: if l1c_total == 0 {
                1.0
            } else {
                l1c_hits as f64 / l1c_total as f64
            },
            l2_cache_hit_rate: if l2c_total == 0 {
                1.0
            } else {
                l2c_hits as f64 / l2c_total as f64
            },
            dram_row_hit_rate: row_hits.rate(),
            iobus_transfers,
            iobus_bytes,
            iobus_queue_mean: iobus_queue.mean(),
            iobus_queue_max: iobus_queue.max().unwrap_or(0),
            iobus_service_mean: iobus_service.mean(),
            iobus_service_max: iobus_service.max().unwrap_or(0),
            refaults: self.refaults,
            manager: self.manager.stats(),
            footprint_bytes: self.manager.footprint_bytes(),
            app_footprint_bytes: self.manager.app_footprint_bytes(),
            touched_bytes: self.manager.touched_bytes(),
            memory_bloat: self.manager.memory_bloat(),
            remote_accesses: p.remote_accesses,
            interconnect_bytes: self.interconnect.bytes() + self.icn_nominal_bytes,
            fleet_migrations: p.migrations,
            fleet_replications: p.replications,
            fleet_copy_bytes: p.migrated_bytes + p.replicated_bytes,
        }
    }
}

impl MemoryInterface for GpuSystem {
    fn warp_access(&mut self, now: Cycle, sm: usize, asid: AppId, addresses: &[VirtAddr]) -> Cycle {
        let mut scratch = AccessTimeline::default();
        self.warp_access_timed(now, sm, asid, addresses, &mut scratch)
    }

    fn warp_access_timed(
        &mut self,
        now: Cycle,
        sm: usize,
        asid: AppId,
        addresses: &[VirtAddr],
        timeline: &mut AccessTimeline,
    ) -> Cycle {
        let mut worst = now + 1;
        // SIMT lockstep: the warp waits for its slowest transaction, so
        // the slowest transaction's timeline is the one the stalled SM
        // is actually waiting on.
        *timeline = AccessTimeline::single(now, worst, StallBucket::Other);
        // Recency/dirty tracking only pays its way when eviction can
        // happen; fully-subscribed runs skip it (and stay digest-stable).
        let track_use = self.cfg.oversubscription.is_some();
        for &addr in addresses {
            let mut tl = AccessTimeline::begin(now);
            let (translated, phys, faulted) = self.translate(now, sm, asid, addr, &mut tl);
            if track_use {
                self.manager.note_use(phys.base_frame(), Self::is_store(asid, addr.base_page()));
            }
            let done = self.data_access(now, translated, sm, asid, addr, phys, faulted, &mut tl);
            tl.seal(done);
            if done > worst {
                worst = done;
                *timeline = tl;
            }
        }
        timeline.seal(worst);
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::ScaleConfig;

    fn small_cfg(manager: ManagerKind) -> RunConfig {
        RunConfig::new(manager).with_scale(ScaleConfig::smoke())
    }

    fn launched(manager: ManagerKind) -> GpuSystem {
        let mut sys = GpuSystem::new(small_cfg(manager));
        sys.launch_app(AppId(0), VirtPageNum(0), 2048);
        sys
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let mut sys = launched(ManagerKind::GpuMmu4K);
        let addr = VirtAddr(0x1000);
        // Expected fault cost at this run's (scaled) I/O-bus calibration.
        let fault_us = sys.config().system.iobus.uncontended_latency(4096).as_micros();
        let fault_cycles = (fault_us * 1020.0) as u64;
        let first = sys.warp_access(Cycle::new(0), 0, AppId(0), &[addr]);
        assert!(
            first.as_u64() > fault_cycles / 2,
            "far-fault latency ≥ ~{fault_cycles} cycles, got {first}"
        );
        let second = sys.warp_access(first, 0, AppId(0), &[addr]);
        assert!(second - first < 20, "L1 TLB + L1$ hit after warm-up, got {}", second - first);
        assert_eq!(sys.stats().iobus_transfers, 1);
    }

    #[test]
    fn preloaded_mode_has_no_fault_cost() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::GpuMmu4K).preloaded());
        sys.launch_app(AppId(0), VirtPageNum(0), 2048);
        let t = sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0x1000)]);
        assert!(t.as_u64() < 2_000, "no I/O-bus transfer, got {t}");
        assert_eq!(sys.stats().iobus_transfers, 0);
    }

    #[test]
    fn ideal_tlb_skips_translation_latency() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::GpuMmu4K).preloaded().ideal_tlb());
        sys.launch_app(AppId(0), VirtPageNum(0), 2048);
        // Cold data access: no TLB/walk charge, only L1$ miss path.
        let t = sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0x200_000)]);
        assert!(t.as_u64() < 500, "no walk on the critical path, got {t}");
        assert_eq!(sys.stats().walks, 0);
        assert_eq!(sys.stats().l1_tlb_total, 0);
    }

    #[test]
    fn tlb_miss_walks_the_page_table() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::GpuMmu4K).preloaded());
        sys.launch_app(AppId(0), VirtPageNum(0), 2048);
        sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0)]);
        assert_eq!(sys.stats().walks, 1);
        assert!(sys.stats().walk_latency_mean > 0.0);
        // Walking again for a distant page: new walk.
        sys.warp_access(Cycle::new(1_000_000), 0, AppId(0), &[VirtAddr(4 << 20)]);
        assert_eq!(sys.stats().walks, 2);
    }

    #[test]
    fn mosaic_coalesced_page_fills_large_tlb_entry() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::mosaic()).preloaded());
        sys.launch_app(AppId(0), VirtPageNum(0), 512); // exactly one chunk
                                                       // Preload coalesced it; the first access walks, then fills a LARGE
                                                       // entry, so a *different* base page of the same 2MB region hits in
                                                       // the L1 TLB immediately.
        let t0 = sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0)]);
        let far = VirtAddr(511 * 4096);
        let t1 = sys.warp_access(t0, 0, AppId(0), &[far]);
        assert!(t1 - t0 < 400, "large-entry hit spares the walk, got {}", t1 - t0);
        assert_eq!(sys.stats().walks, 1);
    }

    #[test]
    fn splinter_event_flushes_large_entries() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::mosaic()).preloaded());
        sys.launch_app(AppId(0), VirtPageNum(0), 512);
        sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0)]); // fill large entry
                                                                     // Deallocate most of the chunk: splinter + compaction.
        sys.deallocate(Cycle::new(10_000), AppId(0), VirtPageNum(0), 500);
        assert!(sys.splinter_events.get() >= 1);
        // The next access must walk again (large entry was flushed).
        let walks_before = sys.stats().walks;
        sys.warp_access(Cycle::new(20_000), 0, AppId(0), &[VirtAddr(510 * 4096)]);
        assert!(sys.stats().walks > walks_before);
    }

    #[test]
    fn compaction_raises_stall_fence() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::mosaic()).preloaded());
        sys.launch_app(AppId(0), VirtPageNum(0), 512 + 64);
        assert!(sys.take_pending_stall().is_none());
        sys.deallocate(Cycle::new(5_000), AppId(0), VirtPageNum(0), 500);
        if sys.manager.stats().migrations > 0 {
            let stall = sys.take_pending_stall().expect("migration stalls the GPU");
            assert!(stall > Cycle::new(5_000));
            assert!(sys.take_pending_stall().is_none(), "fence is drained");
        }
    }

    #[test]
    fn gpu_mmu_2mb_transfers_whole_large_pages() {
        let mut sys = launched(ManagerKind::GpuMmu2M);
        let large_us = sys.config().system.iobus.uncontended_latency(2 * 1024 * 1024).as_micros();
        let small_us = sys.config().system.iobus.uncontended_latency(4096).as_micros();
        // The paper's six-fold base-vs-large fault gap survives scaling
        // (bandwidth scales slower than latency, so the gap can widen but
        // never narrow below the paper's asymmetry).
        assert!(large_us / small_us >= 318.0 / 55.0 - 0.5, "{}", large_us / small_us);
        let done = sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0x1000)]);
        assert!(done.as_u64() as f64 > large_us * 1020.0 * 0.5, "2MB far-fault, got {done}");
        assert_eq!(sys.stats().iobus_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn stats_aggregate_tlb_counters() {
        let mut sys = GpuSystem::new(small_cfg(ManagerKind::GpuMmu4K).preloaded());
        sys.launch_app(AppId(0), VirtPageNum(0), 64);
        sys.warp_access(Cycle::new(0), 0, AppId(0), &[VirtAddr(0)]);
        sys.warp_access(Cycle::new(100_000), 0, AppId(0), &[VirtAddr(0)]);
        let s = sys.stats();
        assert_eq!(s.l1_tlb_total, 2);
        assert_eq!(s.l1_tlb_hits, 1);
        assert!(s.l2_tlb_total >= 1);
    }
}
