//! Speculative intra-run parallelism: epoch-sharded SM execution with a
//! deterministic merge, bit-identical to the serial engine at any worker
//! count.
//!
//! # Design (DESIGN.md §12)
//!
//! The serial runner advances the SM with the smallest local clock
//! through the full memory system. Most of those steps never leave the
//! SM's *lane* — its own L1 TLB and L1 cache plus read-only shared state
//! (the page tables): an L1 TLB hit followed by an L1 cache hit touches
//! nothing another SM can observe. This engine exploits that:
//!
//! 1. **Speculate in place.** Worker threads partition the lanes and run
//!    chains of up to [`SPEC_DEPTH`] `advance` steps per lane directly on
//!    the live structures, journaling every mutation (SM scheduler state,
//!    TLB probe, cache access) and buffering every cross-lane effect
//!    (recency/dirty notes, telemetry events). A step that would need the
//!    shared path — any L1 TLB miss, L1 cache miss, or fault — *aborts*:
//!    the speculative memory wrapper returns [`Cycle::MAX`] and the
//!    worker rolls the step back exactly via its journals.
//! 2. **Merge in canonical order.** The main thread replays the serial
//!    scheduling heap. While the smallest-clock lane has an unconsumed
//!    speculated step, consuming it is metadata-only: forward its
//!    buffered telemetry, apply its recency notes, take the epoch/audit
//!    snapshots — all in exactly the serial commit order.
//! 3. **Commit before shared work.** When the smallest-clock lane needs
//!    the shared path, *all* unconsumed speculation is undone first, then
//!    a burst of [`BURST`] steps runs through the ordinary serial loop
//!    body ([`SchedLoop::step_serial`]) — faults, evictions, shootdowns,
//!    deallocations and whole-GPU stall fences all execute on the single
//!    serial thread, against exactly the state the serial engine would
//!    have had.
//!
//! Determinism follows from three invariants: a consumable step reads
//! only lane-local state plus shared state no other lane's consumable
//! step can write (so its results cannot depend on worker scheduling);
//! the scheduling heap receives the identical (cycle, lane) sequence the
//! serial loop would push; and every effect with cross-lane visibility is
//! applied on the main thread in heap order. The speculative and serial
//! paths share one loop body (`Sm::advance_impl`, `GpuSystem`'s L1
//! helpers), so they cannot drift apart.

use crate::runner::{SchedLoop, EPOCH_EVERY};
use crate::system::{GpuSystem, L1Translate};
use mosaic_gpu::{AdvanceUndo, MemoryInterface, Sm, SmStats};
use mosaic_mem::{Cache, CacheAccessUndo};
use mosaic_sim_core::Cycle;
use mosaic_telemetry::{emit, AccessTimeline, Event, MemSink, StallBucket};
use mosaic_vm::{AppId, PageTableSet, PhysFrameNum, Tlb, TlbLookupUndo, VirtAddr};
use mosaic_workloads::{AppWarpStream, AppWarpStreamState};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unconsumed-step target per lane chain. Deep enough to amortize the
/// per-round thread spawns, shallow enough that a mispredicted lane
/// wastes little work.
const SPEC_DEPTH: usize = 32;

/// Serial steps run after a commit barrier before speculation resumes.
/// Shared-path steps cluster (a faulting warp usually faults again soon),
/// so re-entering speculation immediately would thrash on aborts.
const BURST: usize = 64;

/// Process-wide `--sim-threads` override; `0` means "not set".
static SIM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide intra-run worker count.
///
/// Takes precedence over `MOSAIC_SIM_THREADS`; used by the `reproduce`
/// binary's `--sim-threads N` flag and by tests that compare the serial
/// and speculative engines in one process. Results are bit-identical at
/// any count.
pub fn set_sim_threads(n: Option<usize>) {
    SIM_THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Intra-run worker count: the [`set_sim_threads`] override, else the
/// `MOSAIC_SIM_THREADS` environment variable, else 1 (serial). Unlike the
/// sweep's `--jobs`, this intentionally does *not* default to the
/// machine's parallelism: speculation pays a journaling overhead that is
/// only worth it when idle cores exist, so a single run stays serial
/// unless asked.
pub fn sim_threads() -> usize {
    let overridden = SIM_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("MOSAIC_SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("MOSAIC_SIM_THREADS={v:?} is not a positive integer; ignoring");
    }
    1
}

/// One speculated `advance` step: the journals that undo it and the
/// buffered cross-lane effects the merge applies when it commits.
struct Step {
    /// SM scheduler/stats journal ([`Sm::advance_logged`]).
    undo: AdvanceUndo<AppWarpStreamState>,
    /// L1 TLB probe journal, in probe order.
    tlb_undo: Vec<TlbLookupUndo>,
    /// L1 cache access journal, in access order.
    cache_undo: Vec<CacheAccessUndo>,
    /// Deferred `note_use` recency/dirty notes, in access order.
    note_use: Vec<(PhysFrameNum, bool)>,
    /// SM clock after the step (the serial loop's heap re-push key).
    post_now: Cycle,
    /// SM statistics after the step (committed epoch snapshots read
    /// these instead of the speculated-ahead live SMs).
    post_stats: SmStats,
    /// Range of this step's events within its lane's event buffer.
    ev_start: usize,
    ev_end: usize,
}

impl Step {
    fn new() -> Self {
        Step {
            undo: AdvanceUndo::default(),
            tlb_undo: Vec::new(),
            cache_undo: Vec::new(),
            note_use: Vec::new(),
            post_now: Cycle::ZERO,
            post_stats: SmStats::default(),
            ev_start: 0,
            ev_end: 0,
        }
    }

    fn reset(&mut self) {
        self.tlb_undo.clear();
        self.cache_undo.clear();
        self.note_use.clear();
        self.ev_start = 0;
        self.ev_end = 0;
    }
}

/// Per-lane speculation state: the chain of unconsumed steps and the
/// telemetry captured while speculating them.
struct Lane {
    /// Speculated steps in execution order; `steps[..consumed]` are
    /// committed, the rest are applied in place but unmerged.
    steps: Vec<Step>,
    consumed: usize,
    /// Events captured on the speculating worker, indexed by the steps'
    /// `ev_start..ev_end` ranges (monotonic, gapless).
    events: Vec<Event>,
    /// The next step needs the shared path (the chain ended on an abort
    /// or on SM retirement): it must run through the serial loop.
    barrier: bool,
    /// Recycled step buffers (journals keep their allocations).
    spare: Vec<Step>,
}

impl Lane {
    fn new() -> Self {
        Lane {
            steps: Vec::new(),
            consumed: 0,
            events: Vec::new(),
            barrier: false,
            spare: Vec::new(),
        }
    }

    fn unconsumed(&self) -> usize {
        self.steps.len() - self.consumed
    }

    /// Drops the committed prefix (steps and their already-forwarded
    /// events), recycling the step buffers.
    fn compact(&mut self) {
        if self.consumed == 0 {
            return;
        }
        let ev_cut = self.steps.get(self.consumed).map_or(self.events.len(), |s| s.ev_start);
        self.events.drain(..ev_cut);
        for s in &mut self.steps[self.consumed..] {
            s.ev_start -= ev_cut;
            s.ev_end -= ev_cut;
        }
        let drained: Vec<Step> = self.steps.drain(..self.consumed).collect();
        self.spare.extend(drained);
        self.consumed = 0;
    }

    /// Discards all bookkeeping after a commit barrier: the live
    /// structures are the committed state, so the chains are moot.
    fn reset(&mut self) {
        let drained: Vec<Step> = self.steps.drain(..).collect();
        self.spare.extend(drained);
        self.consumed = 0;
        self.events.clear();
        self.barrier = false;
    }
}

/// The speculative lane-local memory system: L1 TLB hits and L1 cache
/// hits only, journaled. Anything else — L1 TLB miss, L1 cache miss,
/// ideal-TLB fault — returns the [`Cycle::MAX`] abort sentinel, and the
/// worker rolls the step back. Shares `GpuSystem`'s L1 helper code, so a
/// serviced access charges exactly the serial cycles and emits exactly
/// the serial events.
struct SpecMem<'a> {
    ideal: bool,
    track_use: bool,
    tables: &'a PageTableSet,
    tlb: &'a mut Tlb,
    cache: &'a mut Cache,
    tlb_undo: &'a mut Vec<TlbLookupUndo>,
    cache_undo: &'a mut Vec<CacheAccessUndo>,
    note_use: &'a mut Vec<(PhysFrameNum, bool)>,
    aborted: bool,
}

impl MemoryInterface for SpecMem<'_> {
    fn warp_access(&mut self, now: Cycle, sm: usize, asid: AppId, addresses: &[VirtAddr]) -> Cycle {
        let mut scratch = AccessTimeline::default();
        self.warp_access_timed(now, sm, asid, addresses, &mut scratch)
    }

    fn warp_access_timed(
        &mut self,
        now: Cycle,
        sm: usize,
        asid: AppId,
        addresses: &[VirtAddr],
        timeline: &mut AccessTimeline,
    ) -> Cycle {
        // Mirrors `GpuSystem::warp_access_timed` exactly, minus every
        // shared-path branch (those abort instead).
        let mut worst = now + 1;
        *timeline = AccessTimeline::single(now, worst, StallBucket::Other);
        for &addr in addresses {
            let mut tl = AccessTimeline::begin(now);
            let (translated, phys) = match GpuSystem::l1_translate(
                self.ideal,
                self.tables,
                self.tlb,
                now,
                sm,
                asid,
                addr,
                &mut tl,
                Some(&mut *self.tlb_undo),
            ) {
                L1Translate::Hit { done, phys } => (done, phys),
                L1Translate::IdealFault | L1Translate::Miss { .. } => {
                    self.aborted = true;
                    return Cycle::MAX;
                }
            };
            if self.track_use {
                self.note_use
                    .push((phys.base_frame(), GpuSystem::is_store(asid, addr.base_page())));
            }
            let done = match GpuSystem::l1_data(
                self.cache,
                translated,
                phys,
                &mut tl,
                Some(&mut *self.cache_undo),
            ) {
                Ok(done) => done,
                Err(_miss) => {
                    self.aborted = true;
                    return Cycle::MAX;
                }
            };
            tl.seal(done);
            if done > worst {
                worst = done;
                *timeline = tl;
            }
        }
        timeline.seal(worst);
        worst
    }
}

/// Runs one phase's scheduling loop with `threads` speculation workers.
/// Bit-identical to `while sched.step_serial() {}` by construction.
pub(crate) fn run_phase(sched: &mut SchedLoop<'_>, threads: usize) {
    let n = sched.sms.len();
    let workers = threads.min(n).max(1);
    let mut lanes: Vec<Lane> = (0..n).map(|_| Lane::new()).collect();
    let mut refill_flags = vec![false; n];
    let mut alive = vec![false; n];
    for &(_, i) in sched.heap.iter() {
        alive[i] = true;
    }
    let mut stats_committed: Vec<SmStats> = sched.sms.iter().map(|s| s.stats()).collect();
    let tracing = mosaic_telemetry::enabled();

    while let Some(&(Reverse(_), idx)) = sched.heap.peek() {
        if lanes[idx].unconsumed() > 0 {
            consume_step(sched, &mut lanes, &mut stats_committed, idx);
        } else if lanes[idx].barrier {
            // Commit barrier: the smallest-clock lane needs the shared
            // memory/VM stack. Roll back everything unmerged, then run a
            // serial burst against the (now exactly committed) state.
            undo_unconsumed(sched, &mut lanes);
            let mut steps = 0;
            while steps < BURST && sched.step_serial() {
                steps += 1;
            }
            for lane in &mut lanes {
                lane.reset();
            }
            for (i, stats) in stats_committed.iter_mut().enumerate() {
                *stats = sched.sms[i].stats();
            }
            alive.fill(false);
            for &(_, i) in sched.heap.iter() {
                alive[i] = true;
            }
        } else {
            // The smallest-clock lane's chain ran dry cleanly: top up
            // every live lane that is running low, in parallel.
            for (i, flag) in refill_flags.iter_mut().enumerate() {
                *flag = alive[i] && !lanes[i].barrier && lanes[i].unconsumed() < SPEC_DEPTH / 2;
            }
            refill(sched, &mut lanes, &refill_flags, workers, tracing);
            // Progress: the top lane now has steps or hit a barrier.
            debug_assert!(lanes[idx].barrier || lanes[idx].unconsumed() > 0);
        }
    }
    debug_assert!(lanes.iter().all(|l| l.unconsumed() == 0), "heap drained with live speculation");
}

/// Commits the next speculated step of lane `idx` in serial heap order.
/// The lane's structures already hold the post-step state; committing
/// forwards the buffered cross-lane effects and replays the serial
/// loop's bookkeeping (epoch snapshot, audit, heap re-push).
fn consume_step(
    sched: &mut SchedLoop<'_>,
    lanes: &mut [Lane],
    stats_committed: &mut [SmStats],
    idx: usize,
) {
    let popped = sched.heap.pop();
    debug_assert!(matches!(popped, Some((_, i)) if i == idx));
    let lane = &mut lanes[idx];
    let step_idx = lane.consumed;
    lane.consumed += 1;
    let step = &lane.steps[step_idx];
    // Forward the step's captured telemetry in commit order.
    for &ev in &lane.events[step.ev_start..step.ev_end] {
        emit(|| ev);
    }
    // Apply the deferred recency/dirty notes in access order.
    for &(frame, store) in &step.note_use {
        sched.system.note_use_commit(frame, store);
    }
    stats_committed[idx] = step.post_stats;
    // A committed lane-local step can never raise the whole-GPU fence.
    debug_assert!(!sched.system.has_pending_stall());
    if mosaic_telemetry::enabled() {
        let now = step.post_now.as_u64();
        if now >= *sched.next_epoch {
            let (mut instructions, mut stall_cycles) = (0u64, 0u64);
            for stats in stats_committed.iter() {
                instructions += stats.instructions;
                stall_cycles += stats.stall_cycles;
            }
            emit(|| Event::Epoch { cycle: now, instructions, stall_cycles });
            *sched.next_epoch = (now / EPOCH_EVERY + 1) * EPOCH_EVERY;
        }
    }
    if let Some(every) = sched.audit_every {
        let now = step.post_now.as_u64();
        if now >= *sched.next_audit {
            // Sound mid-speculation: speculated steps never change TLB
            // membership or page tables, so the audit sees exactly the
            // committed-state invariants the serial loop would.
            sched.system.audit().assert_clean(format_args!("cycle {now}"));
            *sched.next_audit = (now / every + 1) * every;
        }
    }
    sched.heap.push((Reverse(step.post_now), idx));
}

/// Rolls back every unconsumed speculated step, newest first per lane,
/// leaving the live structures exactly at the committed state. Lanes are
/// independent, so cross-lane undo order is irrelevant; within a lane
/// and within a step, journals undo in reverse application order (the
/// TLB and cache journals touch disjoint state, so only their internal
/// order matters).
fn undo_unconsumed(sched: &mut SchedLoop<'_>, lanes: &mut [Lane]) {
    let sms = &mut *sched.sms;
    let (_cfg, _tables, tlbs, caches) = sched.system.speculation_split();
    for (i, lane) in lanes.iter_mut().enumerate() {
        for step in lane.steps[lane.consumed..].iter().rev() {
            for rec in step.cache_undo.iter().rev() {
                caches[i].undo_access(rec);
            }
            for rec in step.tlb_undo.iter().rev() {
                tlbs[i].undo_lookup(rec);
            }
            sms[i].undo_advance(&step.undo);
        }
    }
}

/// Tops up the flagged lanes' chains in parallel: lanes are partitioned
/// into contiguous chunks, one scoped worker per chunk. Workers touch
/// only their own lanes plus the read-only page tables, so the partition
/// (and worker scheduling) cannot influence any result.
fn refill(
    sched: &mut SchedLoop<'_>,
    lanes: &mut [Lane],
    flags: &[bool],
    workers: usize,
    tracing: bool,
) {
    let sms = &mut *sched.sms;
    let (cfg, tables, tlbs, caches) = sched.system.speculation_split();
    let ideal = cfg.system.ideal_tlb;
    let track_use = cfg.oversubscription.is_some();
    let chunk = lanes.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for ((((sm_c, tlb_c), cache_c), lane_c), flag_c) in sms
            .chunks_mut(chunk)
            .zip(tlbs.chunks_mut(chunk))
            .zip(caches.chunks_mut(chunk))
            .zip(lanes.chunks_mut(chunk))
            .zip(flags.chunks(chunk))
        {
            if !flag_c.iter().any(|&f| f) {
                continue;
            }
            scope.spawn(move || {
                if tracing {
                    // Workers capture their lanes' events locally; the
                    // merge forwards them in commit order on the main
                    // thread's sink.
                    mosaic_telemetry::set_sink(Some(Box::new(MemSink::new())));
                    mosaic_telemetry::set_enabled(true);
                }
                let it = sm_c
                    .iter_mut()
                    .zip(tlb_c.iter_mut())
                    .zip(cache_c.iter_mut())
                    .zip(lane_c.iter_mut())
                    .zip(flag_c.iter());
                for ((((sm, tlb), cache), lane), &flag) in it {
                    if flag {
                        refill_lane(sm, tlb, cache, lane, tables, ideal, track_use, tracing);
                    }
                }
                if tracing {
                    mosaic_telemetry::set_enabled(false);
                    mosaic_telemetry::set_sink(None);
                }
            });
        }
    });
}

/// Extends one lane's chain in place until it holds [`SPEC_DEPTH`]
/// unconsumed steps, aborting (and exactly rolling back) the first step
/// that needs the shared path.
#[allow(clippy::too_many_arguments)] // worker-side split borrows of the system
fn refill_lane(
    sm: &mut Sm<AppWarpStream>,
    tlb: &mut Tlb,
    cache: &mut Cache,
    lane: &mut Lane,
    tables: &PageTableSet,
    ideal: bool,
    track_use: bool,
    tracing: bool,
) {
    debug_assert!(!lane.barrier);
    lane.compact();
    let first_new = lane.steps.len();
    let ev_base = lane.events.len();
    while lane.steps.len() < SPEC_DEPTH {
        let mut step = lane.spare.pop().unwrap_or_else(Step::new);
        step.reset();
        let ev_start = mosaic_telemetry::sink_len();
        let (active, aborted) = {
            let mut mem = SpecMem {
                ideal,
                track_use,
                tables,
                tlb: &mut *tlb,
                cache: &mut *cache,
                tlb_undo: &mut step.tlb_undo,
                cache_undo: &mut step.cache_undo,
                note_use: &mut step.note_use,
                aborted: false,
            };
            let active = sm.advance_logged(&mut mem, &mut step.undo);
            (active, mem.aborted)
        };
        if aborted || !active {
            // Aborted (shared path needed) or the SM retired (the
            // runner's retirement/deallocation logic must run serially):
            // roll the step back exactly and stop the chain.
            for rec in step.cache_undo.iter().rev() {
                cache.undo_access(rec);
            }
            for rec in step.tlb_undo.iter().rev() {
                tlb.undo_lookup(rec);
            }
            sm.undo_advance(&step.undo);
            if tracing {
                mosaic_telemetry::truncate_sink(ev_start);
            }
            lane.barrier = true;
            lane.spare.push(step);
            break;
        }
        step.post_now = sm.now();
        step.post_stats = sm.stats();
        step.ev_start = ev_start;
        step.ev_end = mosaic_telemetry::sink_len();
        lane.steps.push(step);
    }
    if tracing {
        // This call's step ranges are relative to the (empty-at-entry)
        // worker sink; rebase them onto the lane's event buffer.
        let fresh = drain_thread_events();
        for s in &mut lane.steps[first_new..] {
            s.ev_start += ev_base;
            s.ev_end += ev_base;
        }
        lane.events.extend(fresh);
    }
}

/// Drains this worker thread's buffered events, leaving the sink
/// installed and empty for the next lane.
fn drain_thread_events() -> Vec<Event> {
    match mosaic_telemetry::set_sink(None) {
        Some(mut sink) => {
            let events = sink.take_events();
            mosaic_telemetry::set_sink(Some(sink));
            events
        }
        None => Vec::new(),
    }
}
