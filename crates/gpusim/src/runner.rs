//! Workload execution and the weighted-speedup metric.
//!
//! SMs are partitioned equally across the concurrently-executing
//! applications (Section 5), each SM is populated with warps drawing from
//! the application's synthetic instruction streams, and the simulation
//! advances the SM with the smallest local clock first so shared-resource
//! contention (L2 TLB, walker, DRAM, I/O bus) is observed in near-global
//! order. When an application's last warp retires, its memory is
//! deallocated — which is what drives CAC activity in long multi-app
//! runs.

use crate::config::{DemandPagingMode, ManagerKind, RunConfig};
use crate::system::{GpuSystem, SystemStats};
use mosaic_gpu::{Sm, SmConfig};
use mosaic_sim_core::{Cycle, SimRng};
use mosaic_telemetry::{emit, Event, StallBreakdown, StallBucket};
use mosaic_vm::AppId;
use mosaic_workloads::{AppLayout, AppWarpStream, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cycles between periodic `Epoch` metric-snapshot events when tracing
/// is enabled (cadenced on SM local clocks; disabled runs never check).
pub(crate) const EPOCH_EVERY: u64 = 100_000;

/// Per-application outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppResult {
    /// Application name (profile abbreviation).
    pub name: String,
    /// Its address space in this run.
    pub asid: u16,
    /// Warp instructions retired across its SMs.
    pub instructions: u64,
    /// Cycles until its last SM finished.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Stall cycles summed over the app's SMs (all phases).
    pub stall_cycles: u64,
    /// Exact decomposition of `stall_cycles` by cause, merged over the
    /// app's SMs and phases (buckets always sum to `stall_cycles`).
    pub stall: StallBreakdown,
}

/// Outcome of one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload display name.
    pub workload: String,
    /// Manager label.
    pub manager: String,
    /// Per-application results, in workload order.
    pub apps: Vec<AppResult>,
    /// End-of-run system statistics.
    pub stats: SystemStats,
    /// Cycle at which the whole workload finished.
    pub total_cycles: u64,
}

impl RunResult {
    /// IPC of application `i`.
    pub fn ipc(&self, i: usize) -> f64 {
        self.apps[i].ipc
    }
}

// The sweep executor ships `(Workload, RunConfig)` jobs to worker threads
// and collects `RunResult`s back; keep these types thread-portable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunConfig>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<AppResult>();
    assert_send_sync::<Workload>();
};

/// One phase's smallest-clock-first scheduling loop, packaged so the
/// serial path and the speculative engine (`shard`) drive the *same*
/// body. [`SchedLoop::step_serial`] is the single source of truth for
/// what one heap pop does — advance, stall fence, epoch snapshot, audit,
/// re-queue or retire-and-deallocate. The engine commits speculated
/// local steps itself (in exactly this order) and falls back to
/// `step_serial` whenever a step needs the shared memory/VM stack.
pub(crate) struct SchedLoop<'a> {
    pub system: &'a mut GpuSystem,
    pub sms: &'a mut [Sm<AppWarpStream>],
    pub heap: &'a mut BinaryHeap<(Reverse<Cycle>, usize)>,
    pub active_per_app: &'a mut [usize],
    pub layouts: &'a [AppLayout],
    pub phase: u32,
    pub phases: u32,
    pub next_epoch: &'a mut u64,
    pub next_audit: &'a mut u64,
    pub audit_every: Option<u64>,
}

impl SchedLoop<'_> {
    /// Pops and fully processes the SM with the smallest local clock.
    /// Returns `false` once the heap is empty (phase complete).
    pub(crate) fn step_serial(&mut self) -> bool {
        let Some((_, idx)) = self.heap.pop() else {
            return false;
        };
        let still_active = self.sms[idx].advance(self.system);
        if let Some(stall) = self.system.take_pending_stall() {
            // Worst-case model (when enabled): compaction/shootdowns
            // stall every SM (Section 5).
            for sm in self.sms.iter_mut() {
                sm.stall_until_for(stall, StallBucket::Shootdown);
            }
        }
        if mosaic_telemetry::enabled() {
            let now = self.sms[idx].now().as_u64();
            if now >= *self.next_epoch {
                let (mut instructions, mut stall_cycles) = (0u64, 0u64);
                for sm in self.sms.iter() {
                    instructions += sm.stats().instructions;
                    stall_cycles += sm.stats().stall_cycles;
                }
                emit(|| Event::Epoch { cycle: now, instructions, stall_cycles });
                *self.next_epoch = (now / EPOCH_EVERY + 1) * EPOCH_EVERY;
            }
        }
        if let Some(every) = self.audit_every {
            let now = self.sms[idx].now().as_u64();
            if now >= *self.next_audit {
                // Lazy context: a clean audit formats nothing.
                self.system.audit().assert_clean(format_args!("cycle {now}"));
                *self.next_audit = (now / every + 1) * every;
            }
        }
        if still_active {
            self.heap.push((Reverse(self.sms[idx].now()), idx));
        } else {
            let app = self.sms[idx].asid().0 as usize;
            self.active_per_app[app] -= 1;
            if self.active_per_app[app] == 0 {
                // This application's kernel finished.
                let now = self.sms[idx].now();
                let asid = self.sms[idx].asid();
                if self.phase + 1 == self.phases {
                    // Final kernel: everything is deallocated.
                    for (start, pages) in self.layouts[app].reservations() {
                        self.system.deallocate(now, asid, start, pages);
                    }
                } else {
                    // Intermediate kernel: drop the scratch half of
                    // the main buffer; the next kernel re-touches it.
                    let pages = self.layouts[app].main_bytes / mosaic_vm::BASE_PAGE_SIZE;
                    let start = mosaic_vm::VirtPageNum(
                        self.layouts[app].main_base.base_page().raw() + pages / 2,
                    );
                    self.system.deallocate(now, asid, start, pages - pages / 2);
                }
            }
        }
        true
    }
}

/// Number of SMs application `i` of `n` receives out of `total` (equal
/// partition, remainder to the earliest applications).
pub fn sm_share(total: usize, n: usize, i: usize) -> usize {
    total / n + usize::from(i < total % n)
}

/// Runs one workload under `cfg` and returns per-application IPC plus
/// system statistics.
///
/// # Panics
///
/// Panics if the workload is empty or has more applications than SMs.
pub fn run_workload(workload: &Workload, cfg: RunConfig) -> RunResult {
    let n = workload.app_count();
    // Weak scaling: a fleet of `g` GPUs fields `g × sm_count` SMs (and
    // `g ×` the physical memory, applied by `GpuSystem::new`).
    let total_sms = cfg.total_sms();
    assert!(n >= 1, "empty workload");
    assert!(n <= total_sms, "more applications than SMs");

    // Layouts come first: under oversubscription the GPU's memory size is
    // derived from the workload's total reservation, so the system cannot
    // be built until the reservations are known.
    let layouts: Vec<AppLayout> =
        workload.apps.iter().map(|p| AppLayout::build(p, &cfg.scale)).collect();
    let mut cfg = cfg;
    if let Some(factor) = cfg.oversubscription {
        assert!(
            cfg.paging == DemandPagingMode::OnDemand,
            "oversubscription requires on-demand paging (preloading cannot exceed memory)"
        );
        assert!(factor >= 1.0, "oversubscription factor must be >= 1.0, got {factor}");
        let reserved_bytes: u64 = layouts
            .iter()
            .flat_map(|l| l.reservations())
            .map(|(_, pages)| pages * mosaic_vm::BASE_PAGE_SIZE)
            .sum();
        // Memory = reservation ÷ factor, rounded *up* to whole large
        // frames with a one-frame floor so the pool is never empty. The
        // target is the *fleet* total, so each device gets its share
        // (GpuSystem pools `gpus ×` the per-device size back together).
        let target = (reserved_bytes as f64 / factor).ceil() as u64;
        let per_gpu = target.div_ceil(cfg.fleet.gpus as u64);
        cfg.system.memory_bytes =
            per_gpu.div_ceil(mosaic_vm::LARGE_PAGE_SIZE).max(1) * mosaic_vm::LARGE_PAGE_SIZE;
    }
    let mut system = GpuSystem::new(cfg);
    let root = SimRng::from_seed(cfg.seed);
    for (i, layout) in layouts.iter().enumerate() {
        let asid = AppId(i as u16);
        for (start, pages) in layout.reservations() {
            system.launch_app(asid, start, pages);
        }
    }

    // Each kernel phase rebuilds the warps (a new grid) and, on the
    // non-final phases, deallocates the application's scratch region (the
    // second half of its main buffer) when its kernel finishes — the
    // between-kernels deallocation that drives CAC (Section 4.4).
    let phases = cfg.scale.phases.max(1);
    let mut phase_start = Cycle::ZERO;
    let mut instr_per_app = vec![0u64; n];
    let mut cycles_per_app = vec![0u64; n];
    let mut stall_cycles_per_app = vec![0u64; n];
    let mut stall_per_app = vec![StallBreakdown::default(); n];
    let mut total_cycles = 0u64;
    // Epoch snapshot cadence (trace-only; the counter is not consulted
    // when tracing is off, so disabled runs skip this entirely).
    let mut next_epoch = EPOCH_EVERY;

    // Runtime invariant auditing (side-effect free, so audited and
    // unaudited runs of the same seed stay bit-identical). On by default
    // in debug builds; opt-in per run (`--audit`) in release.
    let audit_every = cfg.effective_audit_every();
    let mut next_audit = audit_every.unwrap_or(0);
    if audit_every.is_some() {
        system.audit().assert_clean("after launch");
    }

    // Intra-run worker count, resolved once per run (`--sim-threads` /
    // `MOSAIC_SIM_THREADS`). Results are bit-identical at any count; >1
    // selects the speculative engine.
    let sim_threads = crate::shard::sim_threads();

    // The SM vector and scheduling heap survive across phases: phase 0
    // populates them, later phases `reload` in place. SMs are
    // monomorphized over `AppWarpStream` so warp issue is static dispatch
    // with no per-warp box.
    let mut sms: Vec<Sm<AppWarpStream>> = Vec::with_capacity(total_sms);
    let mut heap: BinaryHeap<(Reverse<Cycle>, usize)> = BinaryHeap::with_capacity(total_sms);

    for phase in 0..phases {
        // Partition SMs and build their warps for this phase's grid. The
        // per-application RNG is forked once per (app, phase) — every SM
        // of the same app derives the same fork, so hoisting it out of
        // the SM loop is digest-neutral.
        let app_rngs: Vec<SimRng> = (0..n as u64)
            .map(|app| root.fork("app-instance", app).fork("phase", u64::from(phase)))
            .collect();
        let mut per_app_sm_seen = vec![0u64; n];
        for sm_id in 0..total_sms {
            let app = sm_id % n;
            let profile = workload.apps[app];
            let asid = AppId(app as u16);
            let share = sm_share(total_sms, n, app) as u64;
            let total_warps = share * cfg.scale.warps_per_sm as u64;
            let sm_ordinal = per_app_sm_seen[app];
            per_app_sm_seen[app] += 1;
            let mem_ops = cfg.scale.mem_ops_for(profile, total_warps);
            let app_rng = &app_rngs[app];
            let streams = (0..cfg.scale.warps_per_sm as u64).map(|w| {
                let warp_idx = sm_ordinal * cfg.scale.warps_per_sm as u64 + w;
                AppWarpStream::new(profile, &layouts[app], warp_idx, total_warps, mem_ops, app_rng)
            });
            let sm = match sms.get_mut(sm_id) {
                Some(sm) => {
                    sm.reload(streams);
                    sm
                }
                None => {
                    let config = SmConfig { warps: cfg.scale.warps_per_sm, batch: 8 };
                    sms.push(Sm::new(sm_id, asid, config, streams.collect()));
                    &mut sms[sm_id]
                }
            };
            // Later phases start where the previous grid left off.
            sm.stall_until(phase_start);
        }
        emit(|| Event::PhaseBegin { phase, cycle: phase_start.as_u64() });

        // Smallest-clock-first scheduling loop.
        heap.clear();
        heap.extend((0..sms.len()).map(|i| (Reverse(Cycle::ZERO), i)));
        let mut active_per_app: Vec<usize> = (0..n).map(|i| sm_share(total_sms, n, i)).collect();
        let mut sched = SchedLoop {
            system: &mut system,
            sms: &mut sms,
            heap: &mut heap,
            active_per_app: &mut active_per_app,
            layouts: &layouts,
            phase,
            phases,
            next_epoch: &mut next_epoch,
            next_audit: &mut next_audit,
            audit_every,
        };
        if sim_threads > 1 {
            // Speculative intra-run parallelism: bit-identical to the
            // serial loop at any worker count (DESIGN.md §12).
            crate::shard::run_phase(&mut sched, sim_threads);
        } else {
            while sched.step_serial() {}
        }

        // Accumulate this phase's results.
        for (i, _) in workload.apps.iter().enumerate() {
            let my_sms = sms.iter().filter(|s| s.asid().0 as usize == i);
            let mut cycles = 0;
            for s in my_sms {
                let stats = s.stats();
                instr_per_app[i] += stats.instructions;
                stall_cycles_per_app[i] += stats.stall_cycles;
                stall_per_app[i].merge(&stats.stall_breakdown);
                cycles = cycles.max(s.now().as_u64());
            }
            cycles_per_app[i] = cycles;
        }
        let phase_end = sms.iter().map(|s| s.now()).max().unwrap_or(phase_start);
        emit(|| Event::PhaseEnd { phase, cycle: phase_end.as_u64() });
        total_cycles = phase_end.as_u64();
        phase_start = phase_end;
        if audit_every.is_some() {
            system.audit().assert_clean(format_args!("end of phase {phase}"));
        }
    }

    // Collect per-application results.
    let mut apps = Vec::with_capacity(n);
    for (i, profile) in workload.apps.iter().enumerate() {
        apps.push(AppResult {
            name: profile.name.to_string(),
            asid: i as u16,
            instructions: instr_per_app[i],
            cycles: cycles_per_app[i],
            ipc: if cycles_per_app[i] == 0 {
                0.0
            } else {
                instr_per_app[i] as f64 / cycles_per_app[i] as f64
            },
            stall_cycles: stall_cycles_per_app[i],
            stall: stall_per_app[i],
        });
    }
    RunResult {
        workload: workload.name.clone(),
        manager: if cfg.system.ideal_tlb {
            "Ideal TLB".to_string()
        } else {
            cfg.manager.label().to_string()
        },
        apps,
        stats: system.stats(),
        total_cycles,
    }
}

/// Runs each application of `workload` *alone* on its shared-run SM share
/// under the baseline GPU-MMU configuration — the `IPC_alone` denominator
/// of the weighted-speedup metric (Section 5). Demand paging and scale
/// follow `cfg`.
pub fn run_alone_baselines(workload: &Workload, cfg: RunConfig) -> Vec<RunResult> {
    let n = workload.app_count();
    workload
        .apps
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut alone_cfg = cfg;
            alone_cfg.manager = ManagerKind::GpuMmu4K;
            alone_cfg.system.ideal_tlb = false;
            alone_cfg.fragmentation = None;
            // Alone baselines run on a single device: the app gets its
            // shared-run share of the *fleet's* SMs, but no interconnect
            // (IPC_alone stays the paper's single-GPU denominator).
            alone_cfg.fleet = crate::config::FleetConfig::single();
            alone_cfg.system.sm_count = sm_share(cfg.total_sms(), n, i);
            let solo = Workload { name: profile.name.to_string(), apps: vec![profile] };
            run_workload(&solo, alone_cfg)
        })
        .collect()
}

/// The weighted speedup of a shared run against per-application alone
/// baselines: `Σ IPC_shared / IPC_alone` (Section 5, Equation 1).
///
/// # Panics
///
/// Panics if the app counts disagree.
pub fn weighted_speedup(shared: &RunResult, alone: &[RunResult]) -> f64 {
    assert_eq!(shared.apps.len(), alone.len(), "need one alone baseline per application");
    shared
        .apps
        .iter()
        .zip(alone)
        .map(|(s, a)| {
            let alone_ipc = a.apps[0].ipc;
            if alone_ipc == 0.0 {
                0.0
            } else {
                s.ipc / alone_ipc
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_workloads::ScaleConfig;

    fn tiny_cfg(manager: ManagerKind) -> RunConfig {
        let mut cfg = RunConfig::new(manager).with_scale(ScaleConfig {
            ws_divisor: 64,
            mem_ops_per_warp: 20,
            warps_per_sm: 4,
            phases: 1,
        });
        cfg.system.sm_count = 6;
        cfg
    }

    #[test]
    fn sm_share_partitions_equally() {
        assert_eq!(sm_share(30, 1, 0), 30);
        assert_eq!(sm_share(30, 2, 0), 15);
        assert_eq!(sm_share(30, 4, 0), 8);
        assert_eq!(sm_share(30, 4, 3), 7);
        let total: usize = (0..4).map(|i| sm_share(30, 4, i)).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn single_app_run_produces_ipc() {
        let w = Workload::from_names(&["MM"]);
        let r = run_workload(&w, tiny_cfg(ManagerKind::GpuMmu4K));
        assert_eq!(r.apps.len(), 1);
        assert!(r.apps[0].instructions > 0);
        assert!(r.apps[0].ipc > 0.0);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Workload::from_names(&["HS", "CONS"]);
        let a = run_workload(&w, tiny_cfg(ManagerKind::mosaic()));
        let b = run_workload(&w, tiny_cfg(ManagerKind::mosaic()));
        assert_eq!(a, b);
    }

    #[test]
    fn two_apps_share_the_gpu() {
        let w = Workload::from_names(&["MM", "NN"]);
        let r = run_workload(&w, tiny_cfg(ManagerKind::GpuMmu4K));
        assert_eq!(r.apps.len(), 2);
        assert!(r.apps.iter().all(|a| a.instructions > 0));
    }

    #[test]
    fn weighted_speedup_of_alone_config_is_app_count() {
        // Sharing nothing (the alone baseline against itself) gives a
        // weighted speedup equal to the number of applications.
        let w = Workload::from_names(&["MM"]);
        let cfg = tiny_cfg(ManagerKind::GpuMmu4K);
        let shared = run_workload(&w, cfg);
        let alone = run_alone_baselines(&w, cfg);
        let ws = weighted_speedup(&shared, &alone);
        assert!((ws - 1.0).abs() < 1e-9, "GPU-MMU alone vs itself: {ws}");
    }

    #[test]
    fn ideal_tlb_is_at_least_as_fast() {
        let w = Workload::from_names(&["GUPS"]);
        let cfg = tiny_cfg(ManagerKind::GpuMmu4K);
        let base = run_workload(&w, cfg);
        let ideal = run_workload(&w, cfg.ideal_tlb());
        assert!(
            ideal.apps[0].ipc >= base.apps[0].ipc,
            "ideal {} vs base {}",
            ideal.apps[0].ipc,
            base.apps[0].ipc
        );
        assert_eq!(ideal.manager, "Ideal TLB");
    }

    #[test]
    fn stall_buckets_sum_exactly_per_app() {
        let w = Workload::from_names(&["GUPS", "MM"]);
        let r = run_workload(&w, tiny_cfg(ManagerKind::mosaic()));
        for app in &r.apps {
            assert!(app.stall_cycles > 0, "{} stalls somewhere", app.name);
            assert_eq!(app.stall.total(), app.stall_cycles, "{} buckets tile stalls", app.name);
            assert!(
                app.stall.get(StallBucket::Other) < app.stall_cycles,
                "{} attribution is not all residual",
                app.name
            );
        }
    }

    #[test]
    fn mosaic_coalesces_under_preload() {
        let w = Workload::from_names(&["MM", "MM"]);
        let r = run_workload(&w, tiny_cfg(ManagerKind::mosaic()).preloaded());
        assert!(r.stats.manager.coalesces > 0, "preloaded chunks coalesce");
        assert_eq!(r.stats.iobus_transfers, 0);
    }

    #[test]
    fn oversubscribed_run_evicts_and_attributes_stalls() {
        let w = Workload::from_names(&["GUPS"]);
        let r = run_workload(&w, tiny_cfg(ManagerKind::mosaic()).oversubscribed(2.0));
        assert!(r.stats.manager.evictions > 0, "2x oversubscription must evict");
        assert!(r.stats.manager.writeback_bytes > 0, "dirty pages write back on eviction");
        assert!(r.apps[0].instructions > 0, "the run completes despite the pressure");
        let app = &r.apps[0];
        assert!(app.stall.get(StallBucket::Evict) > 0, "evict bucket attributes");
        assert!(app.stall.get(StallBucket::Writeback) > 0, "writeback bucket attributes");
        assert_eq!(app.stall.total(), app.stall_cycles, "buckets still tile exactly");
    }

    #[test]
    fn oversubscribed_runs_are_deterministic() {
        let w = Workload::from_names(&["MM", "GUPS"]);
        let cfg = tiny_cfg(ManagerKind::GpuMmu4K).oversubscribed(2.0);
        let a = run_workload(&w, cfg);
        assert!(a.stats.manager.evictions > 0);
        assert_eq!(a, run_workload(&w, cfg));
    }

    #[test]
    fn oversubscription_shrinks_memory_to_the_reservation_ratio() {
        let w = Workload::from_names(&["MM"]);
        let full = run_workload(&w, tiny_cfg(ManagerKind::GpuMmu4K));
        let half = run_workload(&w, tiny_cfg(ManagerKind::GpuMmu4K).oversubscribed(2.0));
        // Same work retires either way; the oversubscribed run pays for it
        // in far-fault traffic (refaults re-cross the bus).
        assert_eq!(full.apps[0].instructions, half.apps[0].instructions);
        assert!(half.stats.iobus_transfers >= full.stats.iobus_transfers);
    }

    #[test]
    fn gpu_mmu_never_coalesces() {
        let w = Workload::from_names(&["MM", "NN"]);
        let r = run_workload(&w, tiny_cfg(ManagerKind::GpuMmu4K));
        assert_eq!(r.stats.manager.coalesces, 0);
    }
}
