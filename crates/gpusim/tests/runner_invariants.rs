//! Runner-level invariants across SM counts, managers, and seeds.

use mosaic_gpusim::{
    run_alone_baselines, run_workload, sm_share, weighted_speedup, ManagerKind, RunConfig,
};
use mosaic_workloads::{ScaleConfig, Workload};

fn tiny(manager: ManagerKind, sms: usize) -> RunConfig {
    let mut cfg = RunConfig::new(manager).with_scale(ScaleConfig {
        ws_divisor: 64,
        mem_ops_per_warp: 30,
        warps_per_sm: 4,
        phases: 1,
    });
    cfg.system.sm_count = sms;
    cfg
}

#[test]
fn sm_shares_always_sum_to_total() {
    for total in [6, 7, 30, 31] {
        for n in 1..=5usize {
            let sum: usize = (0..n).map(|i| sm_share(total, n, i)).sum();
            assert_eq!(sum, total, "total {total}, {n} apps");
            // Shares differ by at most one.
            let shares: Vec<_> = (0..n).map(|i| sm_share(total, n, i)).collect();
            let (mn, mx) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }
}

#[test]
fn uneven_sm_partitions_still_run_all_apps() {
    // 7 SMs across 3 apps: shares 3/2/2.
    let w = Workload::from_names(&["NN", "HS", "MM"]);
    let r = run_workload(&w, tiny(ManagerKind::mosaic(), 7));
    assert_eq!(r.apps.len(), 3);
    for a in &r.apps {
        assert!(a.instructions > 0, "{} starved", a.name);
    }
}

#[test]
fn migrating_manager_runs_in_system() {
    let w = Workload::from_names(&["HS", "NN"]);
    let r = run_workload(&w, tiny(ManagerKind::migrating(), 6));
    assert_eq!(r.manager, "Migrating-Coalescer");
    assert!(r.apps.iter().all(|a| a.instructions > 0));
    // Promotion moved data; Mosaic on the same workload moves none.
    let m = run_workload(&w, tiny(ManagerKind::mosaic(), 6));
    assert_eq!(m.stats.manager.migrations, 0);
}

#[test]
fn weighted_speedup_is_seed_stable_for_alone_baselines() {
    let w = Workload::from_names(&["HS"]);
    let cfg = tiny(ManagerKind::GpuMmu4K, 6);
    let alone1 = run_alone_baselines(&w, cfg);
    let alone2 = run_alone_baselines(&w, cfg);
    assert_eq!(alone1, alone2);
    let shared = run_workload(&w, cfg);
    let ws = weighted_speedup(&shared, &alone1);
    assert!((ws - 1.0).abs() < 1e-9, "baseline against itself: {ws}");
}

#[test]
fn single_sm_degenerate_case_works() {
    let w = Workload::from_names(&["NN"]);
    let r = run_workload(&w, tiny(ManagerKind::mosaic(), 1));
    assert!(r.apps[0].ipc > 0.0);
}

#[test]
#[should_panic(expected = "more applications than SMs")]
fn more_apps_than_sms_is_rejected() {
    let w = Workload::from_names(&["NN", "HS", "MM"]);
    let _ = run_workload(&w, tiny(ManagerKind::mosaic(), 2));
}

#[test]
fn multi_kernel_phases_drive_cac_between_kernels() {
    let w = Workload::from_names(&["HS"]);
    let mut cfg = tiny(ManagerKind::mosaic(), 6);
    cfg.scale.phases = 3;
    let multi = run_workload(&w, cfg);
    let mut single = cfg;
    single.scale.phases = 1;
    let one = run_workload(&w, single);
    // Three kernels retire three grids' worth of instructions...
    assert!(multi.apps[0].instructions > one.apps[0].instructions * 2);
    assert!(multi.total_cycles > one.total_cycles);
    // ...and the between-kernel scratch deallocations exercised the
    // splinter path (pages re-fault next kernel).
    assert!(
        multi.stats.manager.splinters >= one.stats.manager.splinters,
        "multi {} vs single {}",
        multi.stats.manager.splinters,
        one.stats.manager.splinters
    );
    assert!(multi.stats.iobus_transfers > one.stats.iobus_transfers, "scratch re-faults");
}

#[test]
fn multi_kernel_runs_stay_deterministic() {
    let w = Workload::from_names(&["NN", "HS"]);
    let mut cfg = tiny(ManagerKind::mosaic(), 6);
    cfg.scale.phases = 2;
    assert_eq!(run_workload(&w, cfg), run_workload(&w, cfg));
}
