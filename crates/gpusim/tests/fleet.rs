//! Multi-GPU fleet integration tests: weak scaling, remote traffic,
//! placement policies, and engine determinism at N > 1.

use mosaic_core::PlacementPolicy;
use mosaic_gpusim::{run_workload, ManagerKind, RunConfig, Topology};
use mosaic_workloads::{ScaleConfig, Workload};

fn fleet_cfg(gpus: usize, topology: Topology) -> RunConfig {
    let mut cfg = RunConfig::new(ManagerKind::mosaic()).with_scale(ScaleConfig {
        ws_divisor: 64,
        mem_ops_per_warp: 20,
        warps_per_sm: 4,
        phases: 1,
    });
    cfg.system.sm_count = 4;
    cfg.multi_gpu(gpus, topology)
}

/// Serialize the full result (apps + stats) for byte-comparison.
fn digest(r: &mosaic_gpusim::RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn two_gpu_fleet_completes_and_goes_remote() {
    let w = Workload::from_names(&["MM", "GUPS"]);
    let r = run_workload(&w, fleet_cfg(2, Topology::FullyConnected));
    assert!(r.apps.iter().all(|a| a.instructions > 0));
    // Apps stripe round-robin across all 8 SMs, so both devices touch
    // both apps' pages: some 2MB regions must resolve remotely.
    assert!(r.stats.remote_accesses > 0, "no remote accesses in a 2-GPU run");
    assert!(r.stats.interconnect_bytes > 0);
    use mosaic_telemetry::StallBucket;
    let remote: u64 = r.apps.iter().map(|a| a.stall.get(StallBucket::Remote)).sum();
    assert!(remote > 0, "remote stall bucket attributes interconnect waits");
}

#[test]
fn single_gpu_fleet_has_no_fleet_traffic() {
    let w = Workload::from_names(&["MM"]);
    let r = run_workload(&w, fleet_cfg(1, Topology::FullyConnected));
    assert_eq!(r.stats.remote_accesses, 0);
    assert_eq!(r.stats.interconnect_bytes, 0);
    assert_eq!(r.stats.fleet_migrations, 0);
}

#[test]
fn fleet_weak_scales_the_machine() {
    let w = Workload::from_names(&["MM"]);
    let one = run_workload(&w, fleet_cfg(1, Topology::FullyConnected));
    let four = run_workload(&w, fleet_cfg(4, Topology::FullyConnected));
    // 4 GPUs field 4x the SMs and thus retire 4x the warp instructions.
    assert_eq!(four.apps[0].instructions, 4 * one.apps[0].instructions);
}

#[test]
fn fleet_runs_are_deterministic() {
    let w = Workload::from_names(&["HS", "CONS"]);
    for topology in [Topology::FullyConnected, Topology::Ring] {
        let a = run_workload(&w, fleet_cfg(4, topology));
        let b = run_workload(&w, fleet_cfg(4, topology));
        assert_eq!(digest(&a), digest(&b), "{topology:?}");
    }
}

#[test]
fn replication_localizes_read_only_regions() {
    let w = Workload::from_names(&["MM", "MM"]);
    let base = run_workload(&w, fleet_cfg(2, Topology::FullyConnected));
    let repl = run_workload(
        &w,
        fleet_cfg(2, Topology::FullyConnected).with_placement(PlacementPolicy::ReplicateReadOnly),
    );
    assert!(repl.stats.fleet_replications > 0, "read-only regions replicate");
    // Every replicated region then services its reader locally, so the
    // replicating run sees strictly fewer remote accesses.
    assert!(
        repl.stats.remote_accesses < base.stats.remote_accesses,
        "replication {} vs first-touch {}",
        repl.stats.remote_accesses,
        base.stats.remote_accesses
    );
}

#[test]
fn migration_moves_hot_regions() {
    let w = Workload::from_names(&["GUPS", "MM"]);
    let r = run_workload(
        &w,
        fleet_cfg(2, Topology::FullyConnected)
            .with_placement(PlacementPolicy::MigrateOnThreshold { threshold: 4 }),
    );
    assert!(r.stats.fleet_migrations > 0, "hot remote regions migrate");
    assert_eq!(
        r.stats.fleet_copy_bytes,
        r.stats.fleet_migrations * mosaic_vm::LARGE_PAGE_SIZE,
        "each migration moves exactly one 2MB region"
    );
    use mosaic_telemetry::StallBucket;
    let migrate: u64 = r.apps.iter().map(|a| a.stall.get(StallBucket::Migrate)).sum();
    assert!(migrate > 0, "migration waits land in the migrate bucket");
}

#[test]
fn speculative_engine_is_bit_identical_on_a_fleet() {
    // Placement and interconnect live on the shared (serial-only) path,
    // so the speculative engine must stay byte-identical at N > 1.
    let w = Workload::from_names(&["MM", "GUPS"]);
    let cfg = fleet_cfg(2, Topology::Ring)
        .with_placement(PlacementPolicy::MigrateOnThreshold { threshold: 3 });
    let serial = run_workload(&w, cfg);
    mosaic_gpusim::set_sim_threads(Some(4));
    let parallel = run_workload(&w, cfg);
    mosaic_gpusim::set_sim_threads(None);
    assert_eq!(digest(&serial), digest(&parallel));
}

#[test]
fn placement_policies_move_the_outcome() {
    let w = Workload::from_names(&["MM", "GUPS"]);
    let ft = run_workload(&w, fleet_cfg(2, Topology::FullyConnected));
    let mig = run_workload(
        &w,
        fleet_cfg(2, Topology::FullyConnected)
            .with_placement(PlacementPolicy::MigrateOnThreshold { threshold: 2 }),
    );
    assert_ne!(digest(&ft), digest(&mig), "policy is a real simulation axis");
}
