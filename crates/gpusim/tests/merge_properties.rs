//! Properties of the speculative engine's deterministic merge.
//!
//! The headline claim (DESIGN.md §12) is *bit-identity*: `--sim-threads N`
//! must produce exactly the serial engine's results — per-app IPC, system
//! statistics, stall decomposition, and the full telemetry event stream —
//! for every N. These tests pin that claim at the `run_workload` level
//! across managers, paging modes, oversubscription, multi-phase runs, and
//! seeds, plus the merge-algebra property that makes it work: commit order
//! is a pure function of (cycle, lane) keys, so any worker-side
//! reordering sorts back to the identical canonical sequence.

use mosaic_gpusim::{set_sim_threads, ManagerKind, RunConfig, RunResult};
use mosaic_telemetry::TraceSession;
use mosaic_workloads::{ScaleConfig, Workload};
use std::sync::{Mutex, MutexGuard};

/// `set_sim_threads` is process-global; tests that flip it serialize.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_cfg(manager: ManagerKind) -> RunConfig {
    let mut cfg = RunConfig::new(manager).with_scale(ScaleConfig {
        ws_divisor: 64,
        mem_ops_per_warp: 24,
        warps_per_sm: 4,
        phases: 1,
    });
    cfg.system.sm_count = 6;
    cfg
}

/// Runs `workload` under `cfg` serially and at several worker counts,
/// asserting bit-identical results (and, when `traced`, byte-identical
/// event streams).
fn assert_engine_equivalence(workload: &Workload, cfg: RunConfig, traced: bool) {
    let _guard = lock();
    set_sim_threads(None);
    let run = |threads: Option<usize>| -> (RunResult, Vec<mosaic_telemetry::Event>) {
        set_sim_threads(threads);
        let result = if traced {
            let session = TraceSession::start();
            let r = mosaic_gpusim::run_workload(workload, cfg);
            (r, session.finish())
        } else {
            (mosaic_gpusim::run_workload(workload, cfg), Vec::new())
        };
        set_sim_threads(None);
        result
    };
    let (serial, serial_events) = run(None);
    for threads in [2, 4, 8] {
        let (sharded, sharded_events) = run(Some(threads));
        assert_eq!(serial, sharded, "results diverge at --sim-threads {threads}");
        assert_eq!(
            serial_events.len(),
            sharded_events.len(),
            "event counts diverge at --sim-threads {threads}"
        );
        for (i, (a, b)) in serial_events.iter().zip(&sharded_events).enumerate() {
            assert_eq!(a, b, "event {i} diverges at --sim-threads {threads}");
        }
    }
}

#[test]
fn preloaded_mosaic_is_bit_identical_across_thread_counts() {
    let w = Workload::from_names(&["MM", "GUPS"]);
    assert_engine_equivalence(&w, tiny_cfg(ManagerKind::mosaic()).preloaded(), false);
}

#[test]
fn on_demand_gpu_mmu_is_bit_identical_across_thread_counts() {
    let w = Workload::from_names(&["HS", "CONS"]);
    assert_engine_equivalence(&w, tiny_cfg(ManagerKind::GpuMmu4K), false);
}

#[test]
fn oversubscribed_run_is_bit_identical_across_thread_counts() {
    // Eviction pressure exercises the deferred note_use path: recency and
    // dirty classification must commit in exact serial order or the LRU
    // eviction choices (and with them every downstream cycle) diverge.
    let w = Workload::from_names(&["MM", "GUPS"]);
    assert_engine_equivalence(&w, tiny_cfg(ManagerKind::mosaic()).oversubscribed(2.0), false);
}

#[test]
fn ideal_tlb_run_is_bit_identical_across_thread_counts() {
    let w = Workload::from_names(&["GUPS"]);
    assert_engine_equivalence(&w, tiny_cfg(ManagerKind::GpuMmu4K).ideal_tlb(), false);
}

#[test]
fn multi_phase_run_is_bit_identical_across_thread_counts() {
    // Between-kernel deallocations force commit barriers mid-run.
    let mut cfg = tiny_cfg(ManagerKind::mosaic());
    cfg.scale.phases = 2;
    let w = Workload::from_names(&["MM", "NN"]);
    assert_engine_equivalence(&w, cfg, false);
}

#[test]
fn traced_run_produces_byte_identical_event_stream() {
    // Telemetry is the strictest witness: every TlbLookup/WarpMem emitted
    // on a speculation worker must be forwarded in exact commit order,
    // interleaved correctly with main-thread Epoch/FarFault/Shootdown
    // events.
    let w = Workload::from_names(&["MM", "GUPS"]);
    assert_engine_equivalence(&w, tiny_cfg(ManagerKind::mosaic()), true);
}

#[test]
fn traced_oversubscribed_run_produces_byte_identical_event_stream() {
    let w = Workload::from_names(&["GUPS"]);
    assert_engine_equivalence(&w, tiny_cfg(ManagerKind::mosaic()).oversubscribed(2.0), true);
}

#[test]
fn seed_sweep_is_bit_identical_at_high_thread_counts() {
    // Eight seeds, serial vs. sharded: the determinism tier's smoke
    // matrix at the unit level.
    let w = Workload::from_names(&["HS", "MUM"]);
    for seed in 0..8u64 {
        let mut cfg = tiny_cfg(ManagerKind::mosaic());
        cfg.seed = seed;
        assert_engine_equivalence(&w, cfg, false);
    }
}

#[test]
fn thread_count_beyond_lane_count_is_clamped_and_identical() {
    let mut cfg = tiny_cfg(ManagerKind::GpuMmu4K);
    cfg.system.sm_count = 2; // fewer lanes than workers
    let w = Workload::from_names(&["MM"]);
    assert_engine_equivalence(&w, cfg, false);
}

#[test]
fn canonical_merge_order_is_invariant_under_worker_reordering() {
    // The merge applies cross-lane effects keyed by (cycle, lane-index)
    // in the scheduling heap's order: ascending cycle, descending lane on
    // ties (BinaryHeap<(Reverse<Cycle>, usize)> pops the max lane index
    // among equal cycles). Workers may *produce* steps in any order; the
    // commit sequence is a sort by that key, so shuffling production
    // order and re-sorting must round-trip for any interleaving.
    let canonical_key = |cycle: u64, lane: usize| (cycle, usize::MAX - lane);
    let mut rng = 0x9e37_79b9_97f4_a7c5u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for seed in 0..64u32 {
        // A plausible epoch's worth of step keys: clustered cycles (ties
        // across lanes are common — SMs run in near-lockstep), 30 lanes.
        let mut steps: Vec<(u64, usize)> = (0..512)
            .map(|i| {
                let cycle = u64::from(seed) * 1000 + next() % 32;
                let lane = (next() as usize + i) % 30;
                (cycle, lane)
            })
            .collect();
        let mut canonical = steps.clone();
        canonical.sort_by_key(|&(c, l)| canonical_key(c, l));
        // Shuffle (Fisher-Yates with the xorshift) to model arbitrary
        // worker completion order, then re-sort.
        for i in (1..steps.len()).rev() {
            let j = (next() as usize) % (i + 1);
            steps.swap(i, j);
        }
        steps.sort_by_key(|&(c, l)| canonical_key(c, l));
        assert_eq!(steps, canonical, "seed {seed}: canonical order depends on production order");
    }
}
