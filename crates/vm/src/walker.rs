//! The shared, highly-threaded page-table walker.
//!
//! A TLB miss invokes a page-table walk: four *serialized* memory accesses
//! that traverse the radix table (Section 2.2, Figure 2). The paper's
//! baseline (after Power et al.) shares one walker among all SMs and allows
//! up to 64 concurrent walks; further misses queue for a walker thread.
//!
//! Concurrent misses to the same page are merged MSHR-style: they join the
//! in-flight walk and observe its completion time instead of consuming
//! another walker thread — the "TLB accesses from multiple threads to the
//! same page are coalesced" behaviour of Section 3.1.
//!
//! The walker is generic over how page-table memory is reached: each level
//! access is performed through a caller-supplied function that charges the
//! appropriate latency (shared L2 cache hit or DRAM access, and optionally
//! a page-walk cache), so the same walker serves the baseline, the
//! ablations, and Mosaic.

use crate::addr::{AppId, PhysAddr, VirtPageNum};
use mosaic_sim_core::{Counter, Cycle, Histogram, OccupancyPool};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A request to translate one base page for one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WalkRequest {
    /// Requesting address space.
    pub asid: AppId,
    /// Faulting base page.
    pub vpn: VirtPageNum,
}

/// The scheduling outcome of a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Cycle at which the walk (or the walk it merged with) completes.
    pub done: Cycle,
    /// Whether this request merged into an already in-flight walk.
    pub coalesced: bool,
}

/// The shared page-table walker.
///
/// # Examples
///
/// ```
/// use mosaic_vm::{PageTableWalker, AppId, VirtPageNum, PhysAddr};
/// use mosaic_sim_core::Cycle;
///
/// let mut walker = PageTableWalker::new(64);
/// let path = [PhysAddr(0x100), PhysAddr(0x200), PhysAddr(0x300), PhysAddr(0x400)];
/// // Each page-table level costs 100 cycles of memory access here.
/// let out = walker.walk(
///     Cycle::new(0),
///     AppId(0),
///     VirtPageNum(7),
///     path,
///     |_level, _addr, start| start + 100,
/// );
/// assert_eq!(out.done, Cycle::new(400)); // 4 serialized accesses
/// assert!(!out.coalesced);
/// ```
#[derive(Debug)]
pub struct PageTableWalker {
    slots: OccupancyPool,
    /// Completion cycle of each in-flight walk, keyed by request; a miss
    /// that finds its request here merges MSHR-style. At most one entry
    /// per request exists (a new walk for a request is only started after
    /// the old entry retired). NOT bounded by the thread count: queued
    /// walks complete far in the future, so under TLB-miss bursts
    /// thousands of entries are live at once — which is why this is a
    /// tree and retirement is heap-driven rather than a per-call linear
    /// sweep (profiled at ~45% of sweep CPU as a flat vector).
    active: BTreeMap<WalkRequest, Cycle>,
    /// Min-heap of `(completion, request)` pairs driving retirement: each
    /// `walk` call first retires every entry completed by `now`. A pair
    /// may be stale (its request already retired and re-walked with a
    /// later completion), so retirement double-checks the completion
    /// recorded in `active` before removing.
    completions: BinaryHeap<Reverse<(Cycle, WalkRequest)>>,
    walks: Counter,
    coalesced: Counter,
    latency: Histogram,
}

impl PageTableWalker {
    /// Creates a walker with `threads` concurrent walk slots (the paper
    /// uses 64).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        PageTableWalker {
            slots: OccupancyPool::new(threads),
            active: BTreeMap::new(),
            completions: BinaryHeap::new(),
            walks: Counter::new(),
            coalesced: Counter::new(),
            latency: Histogram::default(),
        }
    }

    /// Performs (or joins) a walk for `vpn` in `asid`'s table.
    ///
    /// `path` is the four-level PTE address sequence from
    /// [`crate::PageTable::walk_path`]. `mem_access(level, addr, start)`
    /// must return the cycle at which a memory read of the level-`level`
    /// PTE at `addr` beginning at `start` completes (level 0 is the root,
    /// level 3 the leaf); the walker serializes the four accesses, models
    /// walker-thread contention, and merges duplicate in-flight requests.
    pub fn walk(
        &mut self,
        now: Cycle,
        asid: AppId,
        vpn: VirtPageNum,
        path: [PhysAddr; 4],
        mut mem_access: impl FnMut(usize, PhysAddr, Cycle) -> Cycle,
    ) -> WalkOutcome {
        let req = WalkRequest { asid, vpn };
        // Retire every walk completed by `now` before probing for a
        // merge; the heap surfaces exactly the entries with `done <= now`.
        while let Some(&Reverse((done, retired))) = self.completions.peek() {
            if done > now {
                break;
            }
            self.completions.pop();
            // Skip stale pairs: `retired` may have been re-walked since,
            // in which case `active` records a *later* completion.
            if self.active.get(&retired) == Some(&done) {
                self.active.remove(&retired);
            }
        }
        if let Some(&done) = self.active.get(&req) {
            self.coalesced.inc();
            return WalkOutcome { done, coalesced: true };
        }
        // Claim a walker thread; a free slot may only be available later.
        let start = self.slots.next_free(now);
        let mut t = start;
        for (level, addr) in path.into_iter().enumerate() {
            let finished = mem_access(level, addr, t);
            debug_assert!(finished >= t, "memory access cannot complete before it starts");
            t = finished;
        }
        // Occupy the slot for the walk's actual duration.
        let grant = self.slots.acquire(now, t.since(start));
        debug_assert_eq!(grant.start, start);
        self.walks.inc();
        self.latency.record(t.since(now));
        self.active.insert(req, t);
        self.completions.push(Reverse((t, req)));
        mosaic_telemetry::emit(|| mosaic_telemetry::Event::PageWalk {
            asid: asid.0,
            vpn: vpn.raw(),
            issue: now.as_u64(),
            done: t.as_u64(),
        });
        WalkOutcome { done: t, coalesced: false }
    }

    /// Number of full walks performed (excluding merged requests).
    pub fn walks(&self) -> u64 {
        self.walks.get()
    }

    /// Number of requests merged into an in-flight walk.
    pub fn coalesced_requests(&self) -> u64 {
        self.coalesced.get()
    }

    /// Distribution of end-to-end walk latency (queueing + 4 accesses), in
    /// cycles.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Number of walker threads.
    pub fn threads(&self) -> usize {
        self.slots.slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> [PhysAddr; 4] {
        [PhysAddr(0x1000), PhysAddr(0x2000), PhysAddr(0x3000), PhysAddr(0x4000)]
    }

    #[test]
    fn four_levels_serialize() {
        let mut w = PageTableWalker::new(4);
        let mut seen = Vec::new();
        let out = w.walk(Cycle::new(10), AppId(0), VirtPageNum(1), path(), |lvl, a, start| {
            seen.push((lvl, a, start));
            start + 50
        });
        assert_eq!(out.done, Cycle::new(210));
        assert_eq!(seen.len(), 4);
        // Each access starts when the previous finished.
        assert_eq!(seen[0].2, Cycle::new(10));
        assert_eq!(seen[3].2, Cycle::new(160));
        assert_eq!(seen.iter().map(|s| s.0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_requests_merge() {
        let mut w = PageTableWalker::new(4);
        let out1 = w.walk(Cycle::new(0), AppId(0), VirtPageNum(9), path(), |_, _, s| s + 100);
        let out2 = w.walk(Cycle::new(5), AppId(0), VirtPageNum(9), path(), |_, _, s| s + 100);
        assert!(!out1.coalesced);
        assert!(out2.coalesced);
        assert_eq!(out2.done, out1.done);
        assert_eq!(w.walks(), 1);
        assert_eq!(w.coalesced_requests(), 1);
    }

    #[test]
    fn different_pages_do_not_merge() {
        let mut w = PageTableWalker::new(4);
        let a = w.walk(Cycle::new(0), AppId(0), VirtPageNum(1), path(), |_, _, s| s + 10);
        let b = w.walk(Cycle::new(0), AppId(0), VirtPageNum(2), path(), |_, _, s| s + 10);
        assert!(!a.coalesced && !b.coalesced);
        assert_eq!(w.walks(), 2);
    }

    #[test]
    fn same_page_different_asid_does_not_merge() {
        let mut w = PageTableWalker::new(4);
        w.walk(Cycle::new(0), AppId(0), VirtPageNum(1), path(), |_, _, s| s + 10);
        let b = w.walk(Cycle::new(0), AppId(1), VirtPageNum(1), path(), |_, _, s| s + 10);
        assert!(!b.coalesced, "protection domains never share walks");
    }

    #[test]
    fn walks_queue_when_threads_exhausted() {
        let mut w = PageTableWalker::new(1);
        let a = w.walk(Cycle::new(0), AppId(0), VirtPageNum(1), path(), |_, _, s| s + 25);
        let b = w.walk(Cycle::new(0), AppId(0), VirtPageNum(2), path(), |_, _, s| s + 25);
        assert_eq!(a.done, Cycle::new(100));
        // Second walk waits for the single walker thread.
        assert_eq!(b.done, Cycle::new(200));
    }

    #[test]
    fn completed_walks_free_their_mshr() {
        let mut w = PageTableWalker::new(4);
        let a = w.walk(Cycle::new(0), AppId(0), VirtPageNum(1), path(), |_, _, s| s + 10);
        // Re-request long after completion: a fresh walk, not a merge.
        let b = w.walk(a.done + 100, AppId(0), VirtPageNum(1), path(), |_, _, s| s + 10);
        assert!(!b.coalesced);
        assert_eq!(w.walks(), 2);
    }

    #[test]
    fn latency_histogram_records_queueing() {
        let mut w = PageTableWalker::new(1);
        w.walk(Cycle::new(0), AppId(0), VirtPageNum(1), path(), |_, _, s| s + 25);
        w.walk(Cycle::new(0), AppId(0), VirtPageNum(2), path(), |_, _, s| s + 25);
        assert_eq!(w.latency().count(), 2);
        assert_eq!(w.latency().min(), Some(100));
        assert_eq!(w.latency().max(), Some(200));
    }
}
