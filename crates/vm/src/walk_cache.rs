//! Page-walk cache (the Section 3.1 ablation).
//!
//! Power et al.'s original GPU MMU design pairs the highly-threaded walker
//! with a *page-walk cache* holding recently-used page-table entries. The
//! Mosaic paper finds that replacing it with a 512-entry shared L2 TLB is
//! ~14% faster on average and adopts the L2 TLB for its baseline; the
//! `ablation_pwc_vs_l2tlb` experiment reproduces that comparison, using
//! this structure.
//!
//! The cache maps physical PTE addresses (any level of the table) to a
//! cheap hit, skipping the memory access for that walk level.

use crate::addr::PhysAddr;
use mosaic_sim_core::Ratio;

/// A fully-associative LRU cache over page-table entry addresses.
///
/// # Examples
///
/// ```
/// use mosaic_vm::{WalkCache, PhysAddr};
///
/// let mut pwc = WalkCache::new(2, 4);
/// assert!(!pwc.access(PhysAddr(0x100)));
/// assert!(pwc.access(PhysAddr(0x100))); // now cached
/// assert_eq!(pwc.latency(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct WalkCache {
    /// `(pte_address, last_used)` pairs; fully associative.
    entries: Vec<(PhysAddr, u64)>,
    capacity: usize,
    latency: u64,
    tick: u64,
    stats: Ratio,
}

impl WalkCache {
    /// Creates a walk cache with `capacity` PTE entries and a hit latency
    /// of `latency` cycles.
    pub fn new(capacity: usize, latency: u64) -> Self {
        WalkCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            latency,
            tick: 0,
            stats: Ratio::default(),
        }
    }

    /// Hit latency in core cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Looks up `addr`, filling it on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        self.tick += 1;
        if self.capacity == 0 {
            self.stats.record(false);
            return false;
        }
        if let Some(e) = self.entries.iter_mut().find(|(a, _)| *a == addr) {
            e.1 = self.tick;
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        if self.entries.len() < self.capacity {
            self.entries.push((addr, self.tick));
        } else {
            let lru = self
                .entries
                .iter_mut()
                .min_by_key(|(_, t)| *t)
                .expect("cache is full, hence non-empty");
            *lru = (addr, self.tick);
        }
        false
    }

    /// Hit-rate statistics.
    pub fn hit_rate(&self) -> Ratio {
        self.stats
    }

    /// Number of cached entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = WalkCache::new(4, 10);
        assert!(!c.access(PhysAddr(1)));
        assert!(c.access(PhysAddr(1)));
        assert_eq!(c.hit_rate().hits(), 1);
        assert_eq!(c.hit_rate().misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = WalkCache::new(2, 1);
        c.access(PhysAddr(1));
        c.access(PhysAddr(2));
        c.access(PhysAddr(1)); // 2 becomes LRU
        c.access(PhysAddr(3)); // evicts 2
        assert!(c.access(PhysAddr(1)));
        assert!(!c.access(PhysAddr(2)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = WalkCache::new(0, 1);
        c.access(PhysAddr(7));
        assert!(!c.access(PhysAddr(7)));
    }
}
