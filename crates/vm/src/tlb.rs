//! Set-associative, ASID-tagged TLBs with split base/large entries.
//!
//! Following the paper (Section 2.2), every TLB level holds two separate
//! sets of entries: one for 4 KB base-page translations and one for 2 MB
//! large-page translations. A lookup probes the large-page entries first;
//! only on a large miss are the base-page entries probed (Section 4.3,
//! "TLB Lookups After Coalescing"). Shared (L2) TLB entries are extended
//! with address-space identifiers so concurrently-running applications can
//! share the structure.
//!
//! These structures are *structural*: they model contents and replacement
//! exactly, while access latency and port contention are charged by the
//! full-system simulator that instantiates them.

use crate::addr::{AppId, PageSize, VirtAddr};

use mosaic_sim_core::Ratio;

/// Geometry of one TLB level.
///
/// An associativity of `0` (or one at least as large as the entry count)
/// means fully associative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of base-page (4 KB) entries.
    pub base_entries: usize,
    /// Associativity of the base-page array (`0` = fully associative).
    pub base_assoc: usize,
    /// Number of large-page (2 MB) entries.
    pub large_entries: usize,
    /// Associativity of the large-page array (`0` = fully associative).
    pub large_assoc: usize,
    /// Access latency in core cycles.
    pub latency: u64,
}

impl TlbConfig {
    /// The paper's per-SM L1 TLB: 128 base + 16 large entries, fully
    /// associative, 1-cycle latency (Table 1).
    pub fn paper_l1() -> Self {
        TlbConfig {
            base_entries: 128,
            base_assoc: 0,
            large_entries: 16,
            large_assoc: 0,
            latency: 1,
        }
    }

    /// The paper's shared L2 TLB: 512 base entries 16-way + 256 large
    /// entries fully associative, 10-cycle latency (Table 1).
    pub fn paper_l2() -> Self {
        TlbConfig {
            base_entries: 512,
            base_assoc: 16,
            large_entries: 256,
            large_assoc: 0,
            latency: 10,
        }
    }
}

/// The outcome of a TLB probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// Hit in the large-page entries; base entries were not probed.
    HitLarge,
    /// Miss in the large-page entries, hit in the base-page entries.
    HitBase,
    /// Miss in both arrays: a page-table walk (or next-level probe) is
    /// required.
    Miss,
}

impl TlbLookup {
    /// Whether the probe hit in either array.
    pub fn is_hit(self) -> bool {
        !matches!(self, TlbLookup::Miss)
    }
}

/// One replacement slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    asid: AppId,
    /// Base- or large-page number, depending on the array.
    page: u64,
    last_used: u64,
}

/// Bucket count of the [`TranslationArray`] counting filter. Power of
/// two, and an order of magnitude above the largest array (512 entries)
/// so most absent probes hit an empty bucket.
const FILTER_BUCKETS: usize = 4096;

/// A set-associative translation array with LRU replacement.
#[derive(Debug, Clone)]
struct TranslationArray {
    sets: Vec<Vec<Slot>>,
    assoc: usize,
    tick: u64,
    /// Counting filter over the `(asid, page)` pairs held across all
    /// sets: each resident pair increments its hash bucket. Invalidations
    /// (TLB shootdowns) arrive for *every* unmapped page but the array
    /// only caches a handful of them, so a zero bucket proves absence and
    /// skips the set scan in the overwhelmingly common case; a non-zero
    /// bucket (present, or a collision) falls back to the scan. Purely an
    /// accelerator: contents and replacement are unchanged, and
    /// maintenance is O(1) per insert/evict.
    filter: Box<[u16; FILTER_BUCKETS]>,
}

/// Deterministic bucket index for one `(asid, page)` pair — a cheap
/// multiplicative mix (no per-run randomness; determinism policy).
fn filter_bucket(asid: AppId, page: u64) -> usize {
    let h = (page ^ (u64::from(asid.0) << 40)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 52) as usize & (FILTER_BUCKETS - 1)
}

impl TranslationArray {
    fn new(entries: usize, assoc: usize) -> Self {
        let (num_sets, assoc) = if entries == 0 {
            (0, 1)
        } else if assoc == 0 || assoc >= entries {
            (1, entries)
        } else {
            assert!(
                entries.is_multiple_of(assoc),
                "TLB entries ({entries}) must be a multiple of associativity ({assoc})"
            );
            (entries / assoc, assoc)
        };
        TranslationArray {
            sets: (0..num_sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            tick: 0,
            filter: Box::new([0; FILTER_BUCKETS]),
        }
    }

    fn set_index(&self, page: u64) -> usize {
        (page % self.sets.len() as u64) as usize
    }

    fn lookup(&mut self, asid: AppId, page: u64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        // A zero bucket proves a miss without scanning the set; a miss
        // touches no slot, so skipping the scan is unobservable (the
        // recency tick above is bumped either way).
        if self.filter[filter_bucket(asid, page)] == 0 {
            return false;
        }
        let idx = self.set_index(page);
        match self.sets[idx].iter_mut().find(|s| s.asid == asid && s.page == page) {
            Some(slot) => {
                slot.last_used = tick;
                true
            }
            None => false,
        }
    }

    /// Inserts a translation, returning any evicted `(asid, page)`.
    fn insert(&mut self, asid: AppId, page: u64) -> Option<(AppId, u64)> {
        if self.sets.is_empty() {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(page);
        let assoc = self.assoc;
        let set = &mut self.sets[idx];
        // One pass finds a refresh hit and the LRU victim together. Ticks
        // are unique within the array, so strict `<` keeps the same
        // (first-minimum) victim the separate `min_by_key` pass chose.
        let mut lru_idx = 0;
        let mut lru_tick = u64::MAX;
        for (i, slot) in set.iter_mut().enumerate() {
            if slot.asid == asid && slot.page == page {
                slot.last_used = tick;
                return None;
            }
            if slot.last_used < lru_tick {
                lru_tick = slot.last_used;
                lru_idx = i;
            }
        }
        self.filter[filter_bucket(asid, page)] += 1;
        if set.len() < assoc {
            set.push(Slot { asid, page, last_used: tick });
            return None;
        }
        let victim = &mut set[lru_idx];
        let evicted = (victim.asid, victim.page);
        *victim = Slot { asid, page, last_used: tick };
        self.filter[filter_bucket(evicted.0, evicted.1)] -= 1;
        Some(evicted)
    }

    fn invalidate(&mut self, asid: AppId, page: u64) -> bool {
        // A zero bucket proves the pair is absent (the common case during
        // unmap shootdown storms) without touching the sets.
        let bucket = filter_bucket(asid, page);
        if self.filter[bucket] == 0 {
            return false;
        }
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        let before = set.len();
        set.retain(|s| !(s.asid == asid && s.page == page));
        if set.len() == before {
            return false; // filter collision, not a resident entry
        }
        self.filter[bucket] -= 1;
        true
    }

    fn flush_asid(&mut self, asid: AppId) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|s| {
                if s.asid == asid {
                    self.filter[filter_bucket(s.asid, s.page)] -= 1;
                    false
                } else {
                    true
                }
            });
            n += before - set.len();
        }
        n
    }

    fn flush_all(&mut self) -> usize {
        self.filter.fill(0);
        let mut n = 0;
        for set in &mut self.sets {
            n += set.len();
            set.clear();
        }
        n
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Locates a resident `(asid, page)` pair without touching recency,
    /// stats, or the filter, returning `(set, way, last_used)`.
    fn find(&self, asid: AppId, page: u64) -> Option<(usize, usize, u64)> {
        if self.sets.is_empty() {
            return None;
        }
        let idx = self.set_index(page);
        self.sets[idx]
            .iter()
            .position(|s| s.asid == asid && s.page == page)
            .map(|way| (idx, way, self.sets[idx][way].last_used))
    }
}

/// The most recent *hit*, kept so an immediately repeated lookup can skip
/// the associative probe (warps overwhelmingly issue runs of accesses to
/// the same page).
///
/// This cache is deliberately a single entry covering only *consecutive*
/// repeats: between the original probe and a cached replay no other
/// operation may touch the TLB, which is exactly what makes the shortcut
/// invisible. The skipped probe would only have bumped the recency tick of
/// the slot that is already the array's most recently used, so every
/// future hit/miss/eviction decision is unchanged; had another lookup,
/// fill, or flush intervened (or a second entry been cached), the slot
/// might no longer be most-recent and skipping its recency update could
/// change a later LRU victim. Statistics are replayed exactly as the slow
/// path records them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LastHit {
    asid: AppId,
    /// Large-page number for a large hit (the entry covers the whole
    /// 2 MB region), base-page number for a base hit.
    page: u64,
    size: PageSize,
}

/// Saved pre-state of one [`Tlb::lookup_logged`] call, sufficient to
/// reverse it exactly.
///
/// A lookup never changes entry membership, set order, or the counting
/// filter — it bumps the recency ticks, refreshes at most one slot's
/// `last_used` (the hitting slot), updates the three hit-rate ratios,
/// and replaces the last-hit cache. The record therefore fits in a few
/// machine words. Undoing is only valid while no *other* TLB mutation
/// (fill, flush, another un-undone lookup) intervenes; the speculative
/// engine guarantees this by rolling back every un-committed step
/// before any shared-path work touches the TLB.
#[derive(Debug, Clone, Copy)]
pub struct TlbLookupUndo {
    base_tick: u64,
    large_tick: u64,
    base_stats: Ratio,
    large_stats: Ratio,
    overall: Ratio,
    last_hit: Option<LastHit>,
    /// The slot whose recency the probe refreshed: `(large-array?, set,
    /// way, previous last_used)`. Captured *before* the probe, so
    /// restoring it is also a no-op-correct write for the replayed-hit
    /// fast path, which leaves the slot untouched.
    touched: Option<(bool, usize, usize, u64)>,
}

/// One TLB level: split base/large arrays, ASID tags, LRU replacement, and
/// hit-rate statistics.
///
/// # Examples
///
/// ```
/// use mosaic_vm::{Tlb, TlbConfig, TlbLookup, AppId, VirtAddr, PageSize};
///
/// let mut tlb = Tlb::new(TlbConfig::paper_l1());
/// let a = VirtAddr(0x20_0000);
/// assert_eq!(tlb.lookup(AppId(0), a), TlbLookup::Miss);
/// tlb.fill(AppId(0), a, PageSize::Base);
/// assert_eq!(tlb.lookup(AppId(0), a), TlbLookup::HitBase);
/// // A different address space never hits another ASID's entries.
/// assert_eq!(tlb.lookup(AppId(1), a), TlbLookup::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    base: TranslationArray,
    large: TranslationArray,
    base_stats: Ratio,
    large_stats: Ratio,
    overall: Ratio,
    last_hit: Option<LastHit>,
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            base: TranslationArray::new(config.base_entries, config.base_assoc),
            large: TranslationArray::new(config.large_entries, config.large_assoc),
            base_stats: Ratio::default(),
            large_stats: Ratio::default(),
            overall: Ratio::default(),
            last_hit: None,
        }
    }

    /// The geometry this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access latency in core cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Probes the TLB for `addr` in address space `asid`: large entries
    /// first, then base entries. A lookup that repeats the previous hit
    /// (same ASID, same covered page, nothing in between) is served from
    /// [`LastHit`] without probing; statistics and outcome are identical
    /// either way.
    pub fn lookup(&mut self, asid: AppId, addr: VirtAddr) -> TlbLookup {
        if let Some(last) = self.last_hit {
            if last.asid == asid {
                match last.size {
                    PageSize::Large if last.page == addr.large_page().raw() => {
                        // Replay of the slow path's large-hit records.
                        self.large_stats.record(true);
                        self.overall.record(true);
                        return TlbLookup::HitLarge;
                    }
                    PageSize::Base if last.page == addr.base_page().raw() => {
                        // Replay of the slow path's large-miss/base-hit
                        // records.
                        self.large_stats.record(false);
                        self.base_stats.record(true);
                        self.overall.record(true);
                        return TlbLookup::HitBase;
                    }
                    _ => {}
                }
            }
        }
        let large_hit = self.large.lookup(asid, addr.large_page().raw());
        self.large_stats.record(large_hit);
        if large_hit {
            self.overall.record(true);
            self.last_hit =
                Some(LastHit { asid, page: addr.large_page().raw(), size: PageSize::Large });
            return TlbLookup::HitLarge;
        }
        let base_hit = self.base.lookup(asid, addr.base_page().raw());
        self.base_stats.record(base_hit);
        self.overall.record(base_hit);
        if base_hit {
            self.last_hit =
                Some(LastHit { asid, page: addr.base_page().raw(), size: PageSize::Base });
            TlbLookup::HitBase
        } else {
            // The probe bumped recency ticks; a stale cached hit must not
            // skip the next probe's tick on top of that.
            self.last_hit = None;
            TlbLookup::Miss
        }
    }

    /// [`Tlb::lookup`] with an undo record appended to `undo`: the
    /// intra-run speculative engine probes in place and rolls an aborted
    /// step back via [`Tlb::undo_lookup`]. Outcome, statistics, and
    /// recency effects are those of `lookup` itself (it is called
    /// directly), so the two paths cannot drift.
    pub fn lookup_logged(
        &mut self,
        asid: AppId,
        addr: VirtAddr,
        undo: &mut Vec<TlbLookupUndo>,
    ) -> TlbLookup {
        let mut rec = TlbLookupUndo {
            base_tick: self.base.tick,
            large_tick: self.large.tick,
            base_stats: self.base_stats,
            large_stats: self.large_stats,
            overall: self.overall,
            last_hit: self.last_hit,
            touched: None,
        };
        // Pre-locate the slot the probe would refresh — large array
        // first, matching the probe order (a resident large entry wins,
        // so the base array is only consulted on a large miss).
        let large_slot = self.large.find(asid, addr.large_page().raw());
        let base_slot =
            if large_slot.is_none() { self.base.find(asid, addr.base_page().raw()) } else { None };
        let result = self.lookup(asid, addr);
        rec.touched = match result {
            TlbLookup::HitLarge => large_slot.map(|(s, w, lu)| (true, s, w, lu)),
            TlbLookup::HitBase => base_slot.map(|(s, w, lu)| (false, s, w, lu)),
            TlbLookup::Miss => None,
        };
        undo.push(rec);
        result
    }

    /// Reverses one [`Tlb::lookup_logged`] call. Records must be undone
    /// in reverse logging order, with no intervening fills or flushes —
    /// see [`TlbLookupUndo`].
    pub fn undo_lookup(&mut self, rec: &TlbLookupUndo) {
        if let Some((large, set, way, last_used)) = rec.touched {
            let arr = if large { &mut self.large } else { &mut self.base };
            arr.sets[set][way].last_used = last_used;
        }
        self.base.tick = rec.base_tick;
        self.large.tick = rec.large_tick;
        self.base_stats = rec.base_stats;
        self.large_stats = rec.large_stats;
        self.overall = rec.overall;
        self.last_hit = rec.last_hit;
    }

    /// Probes without recording statistics or updating recency (used for
    /// inspection in tests and assertions).
    pub fn peek(&self, asid: AppId, addr: VirtAddr) -> TlbLookup {
        let lp = addr.large_page().raw();
        if !self.large.sets.is_empty()
            && self.large.sets[self.large.set_index(lp)]
                .iter()
                .any(|s| s.asid == asid && s.page == lp)
        {
            return TlbLookup::HitLarge;
        }
        let bp = addr.base_page().raw();
        if !self.base.sets.is_empty()
            && self.base.sets[self.base.set_index(bp)]
                .iter()
                .any(|s| s.asid == asid && s.page == bp)
        {
            return TlbLookup::HitBase;
        }
        TlbLookup::Miss
    }

    /// Fills the translation for `addr` into the array selected by `size`,
    /// returning any evicted `(asid, page-number)` pair.
    pub fn fill(&mut self, asid: AppId, addr: VirtAddr, size: PageSize) -> Option<(AppId, u64)> {
        self.last_hit = None;
        match size {
            PageSize::Base => self.base.insert(asid, addr.base_page().raw()),
            PageSize::Large => self.large.insert(asid, addr.large_page().raw()),
        }
    }

    /// Invalidates the large-page entry covering `addr`, as required when a
    /// coalesced page is splintered (Section 4.4). Returns whether an entry
    /// was present.
    pub fn flush_large(&mut self, asid: AppId, addr: VirtAddr) -> bool {
        self.last_hit = None;
        self.large.invalidate(asid, addr.large_page().raw())
    }

    /// Invalidates the base-page entry covering `addr`. Returns whether an
    /// entry was present.
    pub fn flush_base(&mut self, asid: AppId, addr: VirtAddr) -> bool {
        self.last_hit = None;
        self.base.invalidate(asid, addr.base_page().raw())
    }

    /// Removes every entry belonging to `asid` (both arrays), returning the
    /// number of entries dropped. Used when an application terminates.
    pub fn flush_asid(&mut self, asid: AppId) -> usize {
        self.last_hit = None;
        self.base.flush_asid(asid) + self.large.flush_asid(asid)
    }

    /// Removes all entries; the full-TLB shootdown of the baseline
    /// coalescing path (Figure 6a). Returns entries dropped.
    pub fn flush_all(&mut self) -> usize {
        self.last_hit = None;
        self.base.flush_all() + self.large.flush_all()
    }

    /// Hit rate over base-entry probes only.
    pub fn base_hit_rate(&self) -> Ratio {
        self.base_stats
    }

    /// Hit rate over large-entry probes only.
    pub fn large_hit_rate(&self) -> Ratio {
        self.large_stats
    }

    /// Hit rate over all lookups (hit in either array).
    pub fn hit_rate(&self) -> Ratio {
        self.overall
    }

    /// Number of valid entries across both arrays.
    pub fn occupancy(&self) -> usize {
        self.base.occupancy() + self.large.occupancy()
    }

    /// Iterates every valid entry as `(asid, page-number, size)` — base
    /// entries carry a virtual base page number, large entries a large
    /// page number. Set-major, deterministic order; used by the runtime
    /// invariant auditor to check TLB/page-table coherence.
    pub fn entries(&self) -> impl Iterator<Item = (AppId, u64, PageSize)> + '_ {
        let base = self.base.sets.iter().flatten().map(|s| (s.asid, s.page, PageSize::Base));
        let large = self.large.sets.iter().flatten().map(|s| (s.asid, s.page, PageSize::Large));
        base.chain(large)
    }

    /// Clears hit/miss statistics without touching contents (used to
    /// exclude warm-up from measurements).
    pub fn reset_stats(&mut self) {
        self.base_stats = Ratio::default();
        self.large_stats = Ratio::default();
        self.overall = Ratio::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{LargePageNum, VirtPageNum, LARGE_PAGE_SIZE};

    fn small_tlb(base: usize, large: usize) -> Tlb {
        Tlb::new(TlbConfig {
            base_entries: base,
            base_assoc: 0,
            large_entries: large,
            large_assoc: 0,
            latency: 1,
        })
    }

    #[test]
    fn large_probed_before_base() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtAddr(3 * LARGE_PAGE_SIZE + 0x1000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(0), addr, PageSize::Large);
        // Both arrays hold the page; the large entry must win.
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitLarge);
    }

    #[test]
    fn large_entry_covers_whole_2mb() {
        let mut tlb = small_tlb(4, 4);
        let lpn = LargePageNum(5);
        tlb.fill(AppId(0), lpn.addr(), PageSize::Large);
        // Any base page within the large page hits.
        assert_eq!(tlb.lookup(AppId(0), lpn.base_page(511).addr()), TlbLookup::HitLarge);
        // The neighbouring large page does not.
        assert_eq!(tlb.lookup(AppId(0), LargePageNum(6).addr()), TlbLookup::Miss);
    }

    #[test]
    fn lru_eviction_in_fully_associative_array() {
        let mut tlb = small_tlb(2, 0);
        let a = VirtPageNum(1).addr();
        let b = VirtPageNum(2).addr();
        let c = VirtPageNum(3).addr();
        tlb.fill(AppId(0), a, PageSize::Base);
        tlb.fill(AppId(0), b, PageSize::Base);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(tlb.lookup(AppId(0), a), TlbLookup::HitBase);
        let evicted = tlb.fill(AppId(0), c, PageSize::Base);
        assert_eq!(evicted, Some((AppId(0), VirtPageNum(2).raw())));
        assert_eq!(tlb.peek(AppId(0), a), TlbLookup::HitBase);
        assert_eq!(tlb.peek(AppId(0), b), TlbLookup::Miss);
        assert_eq!(tlb.peek(AppId(0), c), TlbLookup::HitBase);
    }

    #[test]
    fn set_associative_indexing_conflicts() {
        // 4 entries, 2-way: 2 sets. Pages 0, 2, 4 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig {
            base_entries: 4,
            base_assoc: 2,
            large_entries: 0,
            large_assoc: 0,
            latency: 1,
        });
        for p in [0u64, 2, 4] {
            tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Base);
        }
        // Page 0 was LRU in set 0 and must have been evicted.
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(0).addr()), TlbLookup::Miss);
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(2).addr()), TlbLookup::HitBase);
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(4).addr()), TlbLookup::HitBase);
        // Set 1 is untouched by this conflict chain.
        tlb.fill(AppId(0), VirtPageNum(1).addr(), PageSize::Base);
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(1).addr()), TlbLookup::HitBase);
    }

    #[test]
    fn asid_isolation() {
        let mut tlb = small_tlb(8, 8);
        let addr = VirtAddr(0x5000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        assert_eq!(tlb.lookup(AppId(1), addr), TlbLookup::Miss);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
    }

    #[test]
    fn duplicate_fill_does_not_evict() {
        let mut tlb = small_tlb(2, 0);
        let a = VirtPageNum(1).addr();
        tlb.fill(AppId(0), a, PageSize::Base);
        assert_eq!(tlb.fill(AppId(0), a, PageSize::Base), None);
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn flush_large_removes_only_large_entry() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtAddr(0x40_0000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(0), addr, PageSize::Large);
        assert!(tlb.flush_large(AppId(0), addr));
        // Base entry survives; the paper keeps base mappings usable.
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
        assert!(!tlb.flush_large(AppId(0), addr), "already flushed");
    }

    #[test]
    fn flush_asid_only_affects_that_app() {
        let mut tlb = small_tlb(8, 8);
        tlb.fill(AppId(0), VirtAddr(0x1000), PageSize::Base);
        tlb.fill(AppId(1), VirtAddr(0x1000), PageSize::Base);
        tlb.fill(AppId(1), VirtAddr(0x20_0000), PageSize::Large);
        assert_eq!(tlb.flush_asid(AppId(1)), 2);
        assert_eq!(tlb.peek(AppId(0), VirtAddr(0x1000)), TlbLookup::HitBase);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtAddr(0x1000);
        tlb.lookup(AppId(0), addr); // miss
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.lookup(AppId(0), addr); // hit
        assert_eq!(tlb.hit_rate().total(), 2);
        assert_eq!(tlb.hit_rate().hits(), 1);
        tlb.reset_stats();
        assert_eq!(tlb.hit_rate().total(), 0);
    }

    #[test]
    fn zero_sized_arrays_never_hit() {
        let mut tlb = Tlb::new(TlbConfig {
            base_entries: 0,
            base_assoc: 0,
            large_entries: 0,
            large_assoc: 0,
            latency: 1,
        });
        let addr = VirtAddr(0x1000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(0), addr, PageSize::Large);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::Miss);
    }

    #[test]
    fn flush_all_empties_tlb() {
        let mut tlb = small_tlb(4, 4);
        tlb.fill(AppId(0), VirtAddr(0x1000), PageSize::Base);
        tlb.fill(AppId(0), VirtAddr(0x20_0000), PageSize::Large);
        assert_eq!(tlb.flush_all(), 2);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn last_hit_cache_serves_repeats() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtPageNum(7).addr();
        tlb.fill(AppId(0), addr, PageSize::Base);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
        assert!(tlb.last_hit.is_some(), "hit primes the cache");
        // Repeats are served from the cache with identical stats.
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
        assert_eq!(tlb.hit_rate().hits(), 3);
        assert_eq!(tlb.hit_rate().total(), 3);
        assert_eq!(tlb.base_hit_rate().total(), 3);
        assert_eq!(tlb.large_hit_rate().total(), 3, "cached base hits replay the large miss");
        assert_eq!(tlb.large_hit_rate().hits(), 0);
        // A different page falls back to the probe; a miss clears the cache.
        assert_eq!(tlb.lookup(AppId(0), VirtPageNum(8).addr()), TlbLookup::Miss);
        assert!(tlb.last_hit.is_none(), "a miss clears the cache");
    }

    #[test]
    fn last_hit_cache_covers_whole_large_page() {
        let mut tlb = small_tlb(4, 4);
        let lpn = LargePageNum(3);
        tlb.fill(AppId(0), lpn.addr(), PageSize::Large);
        assert_eq!(tlb.lookup(AppId(0), lpn.base_page(0).addr()), TlbLookup::HitLarge);
        // A different base page of the same large page is still a cached
        // repeat — the large entry covers all of it.
        assert_eq!(tlb.lookup(AppId(0), lpn.base_page(511).addr()), TlbLookup::HitLarge);
        assert_eq!(tlb.large_hit_rate().hits(), 2);
        assert_eq!(tlb.hit_rate().total(), 2);
        assert_eq!(tlb.base_hit_rate().total(), 0, "large hits never probe the base array");
    }

    #[test]
    fn last_hit_cache_is_asid_isolated() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtPageNum(7).addr();
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(1), addr, PageSize::Base);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
        // Same page, different address space: must not be served from
        // AppId(0)'s cached hit (it re-probes and re-caches for AppId(1)).
        assert_eq!(
            tlb.last_hit,
            Some(LastHit { asid: AppId(0), page: VirtPageNum(7).raw(), size: PageSize::Base })
        );
        assert_eq!(tlb.lookup(AppId(1), addr), TlbLookup::HitBase);
        assert_eq!(
            tlb.last_hit,
            Some(LastHit { asid: AppId(1), page: VirtPageNum(7).raw(), size: PageSize::Base })
        );
        // An ASID with no entry misses even though the page matches.
        assert_eq!(tlb.lookup(AppId(2), addr), TlbLookup::Miss);
    }

    #[test]
    fn last_hit_cache_invalidated_by_fills_and_flushes() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtPageNum(7).addr();
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.lookup(AppId(0), addr);
        assert!(tlb.last_hit.is_some());
        tlb.fill(AppId(0), VirtPageNum(9).addr(), PageSize::Base);
        assert!(tlb.last_hit.is_none(), "fill invalidates");

        tlb.lookup(AppId(0), addr);
        assert!(tlb.last_hit.is_some());
        assert!(tlb.flush_base(AppId(0), addr));
        assert!(tlb.last_hit.is_none(), "flush_base invalidates");
        // The flushed entry must actually miss (the stale cached hit would
        // have claimed HitBase).
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::Miss);

        tlb.fill(AppId(0), addr, PageSize::Large);
        tlb.lookup(AppId(0), addr);
        assert!(tlb.last_hit.is_some());
        assert!(tlb.flush_large(AppId(0), addr));
        assert!(tlb.last_hit.is_none(), "flush_large invalidates");

        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.lookup(AppId(0), addr);
        tlb.flush_asid(AppId(0));
        assert!(tlb.last_hit.is_none(), "flush_asid invalidates");

        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.lookup(AppId(0), addr);
        tlb.flush_all();
        assert!(tlb.last_hit.is_none(), "flush_all invalidates");
    }

    #[test]
    fn last_hit_cache_preserves_lru_outcomes() {
        // Drive two TLBs with the same operations, but defeat the cache on
        // one of them by re-probing (a cached replay leaves array state
        // untouched, so the extra lookups on `slow` are the *slow path* of
        // the same repeats). Contents, evictions, and subsequent victims
        // must match — the observational-equivalence claim of `LastHit`.
        let mut fast = small_tlb(2, 0);
        let mut slow = small_tlb(2, 0);
        let a = VirtPageNum(1).addr();
        let b = VirtPageNum(2).addr();
        let c = VirtPageNum(3).addr();
        for t in [&mut fast, &mut slow] {
            t.fill(AppId(0), a, PageSize::Base);
            t.fill(AppId(0), b, PageSize::Base);
        }
        // `fast` serves the repeats from the cache; `slow` has its cache
        // cleared before each repeat so every one takes the probe path.
        for _ in 0..5 {
            assert_eq!(fast.lookup(AppId(0), a), TlbLookup::HitBase);
            slow.last_hit = None;
            assert_eq!(slow.lookup(AppId(0), a), TlbLookup::HitBase);
        }
        // `a` is most-recent in both; the next fill must evict `b` in both.
        assert_eq!(fast.fill(AppId(0), c, PageSize::Base), Some((AppId(0), VirtPageNum(2).raw())));
        assert_eq!(slow.fill(AppId(0), c, PageSize::Base), Some((AppId(0), VirtPageNum(2).raw())));
        let fast_entries: Vec<_> = fast.entries().collect();
        let slow_entries: Vec<_> = slow.entries().collect();
        assert_eq!(fast_entries, slow_entries);
    }

    /// Randomized round-trip contract of the speculation journal: a
    /// chain of logged lookups returns exactly what plain lookups
    /// return, and undoing the chain in reverse restores the TLB to a
    /// state indistinguishable from the pre-chain snapshot (compared via
    /// `Debug`, which covers sets, ticks, filter, stats, and the
    /// last-hit cache).
    #[test]
    fn logged_lookup_matches_plain_and_undoes_exactly() {
        use mosaic_sim_core::SimRng;
        let mut rng = SimRng::from_seed(0x51ED_10C5);
        // Small set-associative arrays so evictions and conflicts churn.
        let mut tlb = Tlb::new(TlbConfig {
            base_entries: 8,
            base_assoc: 2,
            large_entries: 4,
            large_assoc: 2,
            latency: 1,
        });
        let addr = |rng: &mut SimRng| {
            // A handful of large pages, each with a few base pages, two
            // ASIDs: dense enough that repeats prime the last-hit cache.
            VirtAddr(rng.below(6) * LARGE_PAGE_SIZE + rng.below(4) * 0x1000)
        };
        for _ in 0..300 {
            // Churn: fills (both sizes) and occasional flushes.
            match rng.below(5) {
                0 => {
                    let a = addr(&mut rng);
                    let size = if rng.chance(0.3) { PageSize::Large } else { PageSize::Base };
                    tlb.fill(AppId(rng.below(2) as u16), a, size);
                }
                1 if rng.chance(0.2) => {
                    tlb.flush_base(AppId(rng.below(2) as u16), addr(&mut rng));
                }
                _ => {
                    // Plain lookups between chains keep recency realistic
                    // (and often prime the fast-path cache).
                    tlb.lookup(AppId(rng.below(2) as u16), addr(&mut rng));
                }
            }
            // A speculative chain of 1–4 logged lookups.
            let snapshot = format!("{tlb:?}");
            let mut twin = tlb.clone();
            let mut undo = Vec::new();
            for _ in 0..rng.below(4) + 1 {
                let asid = AppId(rng.below(2) as u16);
                let a = addr(&mut rng);
                assert_eq!(
                    tlb.lookup_logged(asid, a, &mut undo),
                    twin.lookup(asid, a),
                    "logged lookup outcome must match the plain path"
                );
            }
            assert_eq!(format!("{tlb:?}"), format!("{twin:?}"), "forward states must match");
            for rec in undo.iter().rev() {
                tlb.undo_lookup(rec);
            }
            assert_eq!(format!("{tlb:?}"), snapshot, "undo must restore the pre-chain state");
            // Continue the churn from the committed (twin) state so later
            // iterations also cover "chain committed" history.
            tlb = twin;
        }
    }

    /// Exhaustively checks that the counting filter stays an exact image
    /// of the array contents through fill/evict/invalidate/flush churn —
    /// each bucket must equal the number of resident pairs hashing to it,
    /// the invariant the shootdown fast path relies on.
    #[test]
    fn presence_filter_tracks_contents_exactly() {
        fn check(tlb: &Tlb) {
            for arr in [&tlb.base, &tlb.large] {
                let mut expected = vec![0u16; FILTER_BUCKETS];
                for s in arr.sets.iter().flatten() {
                    expected[filter_bucket(s.asid, s.page)] += 1;
                }
                assert_eq!(&expected[..], &arr.filter[..], "filter drifted from set contents");
            }
        }
        let mut tlb = small_tlb(2, 1);
        check(&tlb);
        // Fill past capacity to force evictions, across two ASIDs.
        for i in 0..5u64 {
            tlb.fill(AppId((i % 2) as u16), VirtPageNum(i).addr(), PageSize::Base);
            check(&tlb);
        }
        tlb.fill(AppId(0), LargePageNum(3).addr(), PageSize::Large);
        check(&tlb);
        // Absent invalidations (the shootdown-storm case) and present ones.
        assert!(!tlb.flush_base(AppId(0), VirtPageNum(999).addr()));
        assert!(!tlb.flush_large(AppId(1), LargePageNum(3).addr()));
        check(&tlb);
        let held: Vec<_> = tlb.entries().collect();
        for (asid, page, size) in held {
            let flushed = match size {
                PageSize::Base => tlb.flush_base(asid, VirtPageNum(page).addr()),
                PageSize::Large => tlb.flush_large(asid, LargePageNum(page).addr()),
            };
            assert!(flushed, "entry reported by entries() must flush");
            check(&tlb);
        }
        assert_eq!(tlb.occupancy(), 0);
        // flush_asid / flush_all keep the mirror in step too.
        for i in 0..4u64 {
            tlb.fill(AppId((i % 2) as u16), VirtPageNum(i).addr(), PageSize::Base);
        }
        tlb.flush_asid(AppId(1));
        check(&tlb);
        assert_eq!(tlb.flush_asid(AppId(1)), 0, "second flush finds nothing");
        tlb.flush_all();
        check(&tlb);
        assert_eq!(tlb.occupancy(), 0);
    }
}
