//! Set-associative, ASID-tagged TLBs with split base/large entries.
//!
//! Following the paper (Section 2.2), every TLB level holds two separate
//! sets of entries: one for 4 KB base-page translations and one for 2 MB
//! large-page translations. A lookup probes the large-page entries first;
//! only on a large miss are the base-page entries probed (Section 4.3,
//! "TLB Lookups After Coalescing"). Shared (L2) TLB entries are extended
//! with address-space identifiers so concurrently-running applications can
//! share the structure.
//!
//! These structures are *structural*: they model contents and replacement
//! exactly, while access latency and port contention are charged by the
//! full-system simulator that instantiates them.

use crate::addr::{AppId, PageSize, VirtAddr};

use mosaic_sim_core::Ratio;

/// Geometry of one TLB level.
///
/// An associativity of `0` (or one at least as large as the entry count)
/// means fully associative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of base-page (4 KB) entries.
    pub base_entries: usize,
    /// Associativity of the base-page array (`0` = fully associative).
    pub base_assoc: usize,
    /// Number of large-page (2 MB) entries.
    pub large_entries: usize,
    /// Associativity of the large-page array (`0` = fully associative).
    pub large_assoc: usize,
    /// Access latency in core cycles.
    pub latency: u64,
}

impl TlbConfig {
    /// The paper's per-SM L1 TLB: 128 base + 16 large entries, fully
    /// associative, 1-cycle latency (Table 1).
    pub fn paper_l1() -> Self {
        TlbConfig {
            base_entries: 128,
            base_assoc: 0,
            large_entries: 16,
            large_assoc: 0,
            latency: 1,
        }
    }

    /// The paper's shared L2 TLB: 512 base entries 16-way + 256 large
    /// entries fully associative, 10-cycle latency (Table 1).
    pub fn paper_l2() -> Self {
        TlbConfig {
            base_entries: 512,
            base_assoc: 16,
            large_entries: 256,
            large_assoc: 0,
            latency: 10,
        }
    }
}

/// The outcome of a TLB probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// Hit in the large-page entries; base entries were not probed.
    HitLarge,
    /// Miss in the large-page entries, hit in the base-page entries.
    HitBase,
    /// Miss in both arrays: a page-table walk (or next-level probe) is
    /// required.
    Miss,
}

impl TlbLookup {
    /// Whether the probe hit in either array.
    pub fn is_hit(self) -> bool {
        !matches!(self, TlbLookup::Miss)
    }
}

/// One replacement slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    asid: AppId,
    /// Base- or large-page number, depending on the array.
    page: u64,
    last_used: u64,
}

/// A set-associative translation array with LRU replacement.
#[derive(Debug, Clone)]
struct TranslationArray {
    sets: Vec<Vec<Slot>>,
    assoc: usize,
    tick: u64,
}

impl TranslationArray {
    fn new(entries: usize, assoc: usize) -> Self {
        let (num_sets, assoc) = if entries == 0 {
            (0, 1)
        } else if assoc == 0 || assoc >= entries {
            (1, entries)
        } else {
            assert!(
                entries.is_multiple_of(assoc),
                "TLB entries ({entries}) must be a multiple of associativity ({assoc})"
            );
            (entries / assoc, assoc)
        };
        TranslationArray {
            sets: (0..num_sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            tick: 0,
        }
    }

    fn set_index(&self, page: u64) -> usize {
        (page % self.sets.len() as u64) as usize
    }

    fn lookup(&mut self, asid: AppId, page: u64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(page);
        match self.sets[idx].iter_mut().find(|s| s.asid == asid && s.page == page) {
            Some(slot) => {
                slot.last_used = tick;
                true
            }
            None => false,
        }
    }

    /// Inserts a translation, returning any evicted `(asid, page)`.
    fn insert(&mut self, asid: AppId, page: u64) -> Option<(AppId, u64)> {
        if self.sets.is_empty() {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(page);
        let assoc = self.assoc;
        let set = &mut self.sets[idx];
        if let Some(slot) = set.iter_mut().find(|s| s.asid == asid && s.page == page) {
            slot.last_used = tick;
            return None;
        }
        if set.len() < assoc {
            set.push(Slot { asid, page, last_used: tick });
            return None;
        }
        let victim =
            set.iter_mut().min_by_key(|s| s.last_used).expect("set is full, hence non-empty");
        let evicted = (victim.asid, victim.page);
        *victim = Slot { asid, page, last_used: tick };
        Some(evicted)
    }

    fn invalidate(&mut self, asid: AppId, page: u64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        let before = set.len();
        set.retain(|s| !(s.asid == asid && s.page == page));
        set.len() != before
    }

    fn flush_asid(&mut self, asid: AppId) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|s| s.asid != asid);
            n += before - set.len();
        }
        n
    }

    fn flush_all(&mut self) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            n += set.len();
            set.clear();
        }
        n
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// One TLB level: split base/large arrays, ASID tags, LRU replacement, and
/// hit-rate statistics.
///
/// # Examples
///
/// ```
/// use mosaic_vm::{Tlb, TlbConfig, TlbLookup, AppId, VirtAddr, PageSize};
///
/// let mut tlb = Tlb::new(TlbConfig::paper_l1());
/// let a = VirtAddr(0x20_0000);
/// assert_eq!(tlb.lookup(AppId(0), a), TlbLookup::Miss);
/// tlb.fill(AppId(0), a, PageSize::Base);
/// assert_eq!(tlb.lookup(AppId(0), a), TlbLookup::HitBase);
/// // A different address space never hits another ASID's entries.
/// assert_eq!(tlb.lookup(AppId(1), a), TlbLookup::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    base: TranslationArray,
    large: TranslationArray,
    base_stats: Ratio,
    large_stats: Ratio,
    overall: Ratio,
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            base: TranslationArray::new(config.base_entries, config.base_assoc),
            large: TranslationArray::new(config.large_entries, config.large_assoc),
            base_stats: Ratio::default(),
            large_stats: Ratio::default(),
            overall: Ratio::default(),
        }
    }

    /// The geometry this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access latency in core cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Probes the TLB for `addr` in address space `asid`: large entries
    /// first, then base entries.
    pub fn lookup(&mut self, asid: AppId, addr: VirtAddr) -> TlbLookup {
        let large_hit = self.large.lookup(asid, addr.large_page().raw());
        self.large_stats.record(large_hit);
        if large_hit {
            self.overall.record(true);
            return TlbLookup::HitLarge;
        }
        let base_hit = self.base.lookup(asid, addr.base_page().raw());
        self.base_stats.record(base_hit);
        self.overall.record(base_hit);
        if base_hit {
            TlbLookup::HitBase
        } else {
            TlbLookup::Miss
        }
    }

    /// Probes without recording statistics or updating recency (used for
    /// inspection in tests and assertions).
    pub fn peek(&self, asid: AppId, addr: VirtAddr) -> TlbLookup {
        let lp = addr.large_page().raw();
        if !self.large.sets.is_empty()
            && self.large.sets[self.large.set_index(lp)]
                .iter()
                .any(|s| s.asid == asid && s.page == lp)
        {
            return TlbLookup::HitLarge;
        }
        let bp = addr.base_page().raw();
        if !self.base.sets.is_empty()
            && self.base.sets[self.base.set_index(bp)]
                .iter()
                .any(|s| s.asid == asid && s.page == bp)
        {
            return TlbLookup::HitBase;
        }
        TlbLookup::Miss
    }

    /// Fills the translation for `addr` into the array selected by `size`,
    /// returning any evicted `(asid, page-number)` pair.
    pub fn fill(&mut self, asid: AppId, addr: VirtAddr, size: PageSize) -> Option<(AppId, u64)> {
        match size {
            PageSize::Base => self.base.insert(asid, addr.base_page().raw()),
            PageSize::Large => self.large.insert(asid, addr.large_page().raw()),
        }
    }

    /// Invalidates the large-page entry covering `addr`, as required when a
    /// coalesced page is splintered (Section 4.4). Returns whether an entry
    /// was present.
    pub fn flush_large(&mut self, asid: AppId, addr: VirtAddr) -> bool {
        self.large.invalidate(asid, addr.large_page().raw())
    }

    /// Invalidates the base-page entry covering `addr`. Returns whether an
    /// entry was present.
    pub fn flush_base(&mut self, asid: AppId, addr: VirtAddr) -> bool {
        self.base.invalidate(asid, addr.base_page().raw())
    }

    /// Removes every entry belonging to `asid` (both arrays), returning the
    /// number of entries dropped. Used when an application terminates.
    pub fn flush_asid(&mut self, asid: AppId) -> usize {
        self.base.flush_asid(asid) + self.large.flush_asid(asid)
    }

    /// Removes all entries; the full-TLB shootdown of the baseline
    /// coalescing path (Figure 6a). Returns entries dropped.
    pub fn flush_all(&mut self) -> usize {
        self.base.flush_all() + self.large.flush_all()
    }

    /// Hit rate over base-entry probes only.
    pub fn base_hit_rate(&self) -> Ratio {
        self.base_stats
    }

    /// Hit rate over large-entry probes only.
    pub fn large_hit_rate(&self) -> Ratio {
        self.large_stats
    }

    /// Hit rate over all lookups (hit in either array).
    pub fn hit_rate(&self) -> Ratio {
        self.overall
    }

    /// Number of valid entries across both arrays.
    pub fn occupancy(&self) -> usize {
        self.base.occupancy() + self.large.occupancy()
    }

    /// Iterates every valid entry as `(asid, page-number, size)` — base
    /// entries carry a virtual base page number, large entries a large
    /// page number. Set-major, deterministic order; used by the runtime
    /// invariant auditor to check TLB/page-table coherence.
    pub fn entries(&self) -> impl Iterator<Item = (AppId, u64, PageSize)> + '_ {
        let base = self.base.sets.iter().flatten().map(|s| (s.asid, s.page, PageSize::Base));
        let large = self.large.sets.iter().flatten().map(|s| (s.asid, s.page, PageSize::Large));
        base.chain(large)
    }

    /// Clears hit/miss statistics without touching contents (used to
    /// exclude warm-up from measurements).
    pub fn reset_stats(&mut self) {
        self.base_stats = Ratio::default();
        self.large_stats = Ratio::default();
        self.overall = Ratio::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{LargePageNum, VirtPageNum, LARGE_PAGE_SIZE};

    fn small_tlb(base: usize, large: usize) -> Tlb {
        Tlb::new(TlbConfig {
            base_entries: base,
            base_assoc: 0,
            large_entries: large,
            large_assoc: 0,
            latency: 1,
        })
    }

    #[test]
    fn large_probed_before_base() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtAddr(3 * LARGE_PAGE_SIZE + 0x1000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(0), addr, PageSize::Large);
        // Both arrays hold the page; the large entry must win.
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitLarge);
    }

    #[test]
    fn large_entry_covers_whole_2mb() {
        let mut tlb = small_tlb(4, 4);
        let lpn = LargePageNum(5);
        tlb.fill(AppId(0), lpn.addr(), PageSize::Large);
        // Any base page within the large page hits.
        assert_eq!(tlb.lookup(AppId(0), lpn.base_page(511).addr()), TlbLookup::HitLarge);
        // The neighbouring large page does not.
        assert_eq!(tlb.lookup(AppId(0), LargePageNum(6).addr()), TlbLookup::Miss);
    }

    #[test]
    fn lru_eviction_in_fully_associative_array() {
        let mut tlb = small_tlb(2, 0);
        let a = VirtPageNum(1).addr();
        let b = VirtPageNum(2).addr();
        let c = VirtPageNum(3).addr();
        tlb.fill(AppId(0), a, PageSize::Base);
        tlb.fill(AppId(0), b, PageSize::Base);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(tlb.lookup(AppId(0), a), TlbLookup::HitBase);
        let evicted = tlb.fill(AppId(0), c, PageSize::Base);
        assert_eq!(evicted, Some((AppId(0), VirtPageNum(2).raw())));
        assert_eq!(tlb.peek(AppId(0), a), TlbLookup::HitBase);
        assert_eq!(tlb.peek(AppId(0), b), TlbLookup::Miss);
        assert_eq!(tlb.peek(AppId(0), c), TlbLookup::HitBase);
    }

    #[test]
    fn set_associative_indexing_conflicts() {
        // 4 entries, 2-way: 2 sets. Pages 0, 2, 4 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig {
            base_entries: 4,
            base_assoc: 2,
            large_entries: 0,
            large_assoc: 0,
            latency: 1,
        });
        for p in [0u64, 2, 4] {
            tlb.fill(AppId(0), VirtPageNum(p).addr(), PageSize::Base);
        }
        // Page 0 was LRU in set 0 and must have been evicted.
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(0).addr()), TlbLookup::Miss);
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(2).addr()), TlbLookup::HitBase);
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(4).addr()), TlbLookup::HitBase);
        // Set 1 is untouched by this conflict chain.
        tlb.fill(AppId(0), VirtPageNum(1).addr(), PageSize::Base);
        assert_eq!(tlb.peek(AppId(0), VirtPageNum(1).addr()), TlbLookup::HitBase);
    }

    #[test]
    fn asid_isolation() {
        let mut tlb = small_tlb(8, 8);
        let addr = VirtAddr(0x5000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        assert_eq!(tlb.lookup(AppId(1), addr), TlbLookup::Miss);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
    }

    #[test]
    fn duplicate_fill_does_not_evict() {
        let mut tlb = small_tlb(2, 0);
        let a = VirtPageNum(1).addr();
        tlb.fill(AppId(0), a, PageSize::Base);
        assert_eq!(tlb.fill(AppId(0), a, PageSize::Base), None);
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn flush_large_removes_only_large_entry() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtAddr(0x40_0000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(0), addr, PageSize::Large);
        assert!(tlb.flush_large(AppId(0), addr));
        // Base entry survives; the paper keeps base mappings usable.
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::HitBase);
        assert!(!tlb.flush_large(AppId(0), addr), "already flushed");
    }

    #[test]
    fn flush_asid_only_affects_that_app() {
        let mut tlb = small_tlb(8, 8);
        tlb.fill(AppId(0), VirtAddr(0x1000), PageSize::Base);
        tlb.fill(AppId(1), VirtAddr(0x1000), PageSize::Base);
        tlb.fill(AppId(1), VirtAddr(0x20_0000), PageSize::Large);
        assert_eq!(tlb.flush_asid(AppId(1)), 2);
        assert_eq!(tlb.peek(AppId(0), VirtAddr(0x1000)), TlbLookup::HitBase);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut tlb = small_tlb(4, 4);
        let addr = VirtAddr(0x1000);
        tlb.lookup(AppId(0), addr); // miss
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.lookup(AppId(0), addr); // hit
        assert_eq!(tlb.hit_rate().total(), 2);
        assert_eq!(tlb.hit_rate().hits(), 1);
        tlb.reset_stats();
        assert_eq!(tlb.hit_rate().total(), 0);
    }

    #[test]
    fn zero_sized_arrays_never_hit() {
        let mut tlb = Tlb::new(TlbConfig {
            base_entries: 0,
            base_assoc: 0,
            large_entries: 0,
            large_assoc: 0,
            latency: 1,
        });
        let addr = VirtAddr(0x1000);
        tlb.fill(AppId(0), addr, PageSize::Base);
        tlb.fill(AppId(0), addr, PageSize::Large);
        assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::Miss);
    }

    #[test]
    fn flush_all_empties_tlb() {
        let mut tlb = small_tlb(4, 4);
        tlb.fill(AppId(0), VirtAddr(0x1000), PageSize::Base);
        tlb.fill(AppId(0), VirtAddr(0x20_0000), PageSize::Large);
        assert_eq!(tlb.flush_all(), 2);
        assert_eq!(tlb.occupancy(), 0);
    }
}
