//! Four-level page tables with Mosaic's PTE extensions.
//!
//! The paper (Section 4.3, Figure 7) keeps the conventional x86-64
//! four-level radix table and adds two bits:
//!
//! * a **large-page bit** on each L3 PTE (the entry covering one 2 MB
//!   region): when set, the region is *coalesced* and translations use the
//!   large-page mapping read from the first L4 PTE of the child table;
//! * a **disabled bit** on each L4 PTE (one base page): set while the
//!   parent is coalesced, to discourage filling base-page TLB entries for
//!   pages already covered by a large-page entry. The base mappings stay
//!   correct because the In-Place Coalescer never migrates data.
//!
//! Because the In-Place Coalescer's key property is that coalescing is a
//! *metadata-only* operation, [`PageTable::coalesce`] and
//! [`PageTable::splinter`] touch only these bits — no frame numbers change.
//!
//! Page-table nodes live in simulated physical memory: every node has a
//! physical address, and [`PageTable::walk_path`] returns the four PTE
//! addresses a hardware walk dereferences, so the memory hierarchy can
//! charge realistic latencies (and cache page-table data in the L2, as the
//! GPU-MMU baseline does).
//!
//! # Representation
//!
//! `translate` sits on the per-access hot path (`GpuSystem` consults it on
//! every TLB hit), so the table is stored flat rather than as nested
//! `BTreeMap`s: regions live in a sorted vector probed by binary search
//! behind a last-hit cache (accesses overwhelmingly stay within one 2 MB
//! region), each region's L4 table is a dense 512-slot array of packed
//! PTEs, and L2 node addresses are a direct-indexed array. All iteration
//! orders (region order, index order) match what the `BTreeMap`s produced,
//! so the change is invisible to the conformance oracle and the audit.

use crate::addr::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum,
    BASE_PAGES_PER_LARGE_PAGE,
};
use mosaic_sim_core::{AuditInvariants, AuditReport};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of a successful address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical base frame holding the page.
    pub frame: PhysFrameNum,
    /// Which page-size class served the translation (what a TLB entry for
    /// it would cover).
    pub size: PageSize,
}

impl Translation {
    /// The large frame containing the translated page.
    pub fn large_frame(&self) -> LargeFrameNum {
        self.frame.large_frame()
    }
}

/// Why a translation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationError {
    /// No mapping exists for the page: the access must page-fault and the
    /// runtime must allocate + transfer the page (a *far-fault* if the data
    /// crosses the system I/O bus).
    NotMapped,
}

impl std::fmt::Display for TranslationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslationError::NotMapped => write!(f, "page not mapped"),
        }
    }
}

impl std::error::Error for TranslationError {}

/// Why a coalesce request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceError {
    /// Not every base page of the large page is mapped (the paper coalesces
    /// only fully-populated large page frames).
    NotFullyPopulated,
    /// The mapped base pages are not contiguous/aligned within one large
    /// frame, so an in-place (migration-free) coalesce is impossible.
    NotContiguous,
    /// The region is already coalesced.
    AlreadyCoalesced,
}

impl std::fmt::Display for CoalesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalesceError::NotFullyPopulated => write!(f, "large page frame not fully populated"),
            CoalesceError::NotContiguous => write!(f, "base pages not contiguous and aligned"),
            CoalesceError::AlreadyCoalesced => write!(f, "region already coalesced"),
        }
    }
}

impl std::error::Error for CoalesceError {}

/// One L4 (leaf) page-table entry: a base-page mapping plus Mosaic's
/// disabled bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct L4Pte {
    frame: PhysFrameNum,
    disabled: bool,
}

/// Dense L4 table: one slot per base page of the region, each packed as
/// `frame << 1 | disabled` with [`L4Table::EMPTY`] marking absent entries
/// (frame numbers stay far below 2^63, so the packing is lossless).
#[derive(Debug, Clone)]
struct L4Table {
    slots: Box<[u64; BASE_PAGES_PER_LARGE_PAGE as usize]>,
    len: u16,
}

impl L4Table {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Self {
        L4Table { slots: Box::new([Self::EMPTY; BASE_PAGES_PER_LARGE_PAGE as usize]), len: 0 }
    }

    #[inline]
    fn get(&self, i: u64) -> Option<L4Pte> {
        match self.slots[i as usize] {
            Self::EMPTY => None,
            packed => Some(L4Pte { frame: PhysFrameNum(packed >> 1), disabled: packed & 1 != 0 }),
        }
    }

    /// Inserts unless occupied; returns the existing frame on collision.
    fn try_insert(&mut self, i: u64, pte: L4Pte) -> Result<(), PhysFrameNum> {
        match self.get(i) {
            Some(existing) => Err(existing.frame),
            None => {
                self.slots[i as usize] = pte.frame.raw() << 1 | u64::from(pte.disabled);
                self.len += 1;
                Ok(())
            }
        }
    }

    fn remove(&mut self, i: u64) -> Option<PhysFrameNum> {
        let old = self.get(i)?;
        self.slots[i as usize] = Self::EMPTY;
        self.len -= 1;
        Some(old.frame)
    }

    fn set_frame(&mut self, i: u64, frame: PhysFrameNum) -> Option<PhysFrameNum> {
        let old = self.get(i)?;
        self.slots[i as usize] = frame.raw() << 1 | u64::from(old.disabled);
        Some(old.frame)
    }

    fn set_all_disabled(&mut self, disabled: bool) {
        for slot in self.slots.iter_mut() {
            if *slot != Self::EMPTY {
                *slot = *slot >> 1 << 1 | u64::from(disabled);
            }
        }
    }

    fn len(&self) -> u64 {
        u64::from(self.len)
    }

    /// Occupied `(index, pte)` pairs in ascending index order — the same
    /// order the old `BTreeMap<u64, L4Pte>` iterated in.
    fn iter(&self) -> impl Iterator<Item = (u64, L4Pte)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, &packed)| match packed {
            Self::EMPTY => None,
            packed => Some((
                i as u64,
                L4Pte { frame: PhysFrameNum(packed >> 1), disabled: packed & 1 != 0 },
            )),
        })
    }
}

/// The L3 PTE state and child L4 table covering one 2 MB virtual region.
#[derive(Debug, Clone)]
struct L3Region {
    /// Mosaic's large-page bit.
    large: bool,
    /// The coalesced mapping's large frame. In hardware this is read out
    /// of the first L4 PTE (Figure 7b), whose high bits survive even if
    /// that base page is later deallocated while the region stays
    /// coalesced; we keep it explicitly for exactly that case.
    large_frame: Option<LargeFrameNum>,
    /// Physical address of the child L4 table node (for walk modelling).
    l4_node: PhysAddr,
    /// Dense L4 table: index within the large page -> PTE.
    entries: L4Table,
}

/// The scan-position cache of [`PageTable::region_pos`]: an atomic so
/// shared references to a table stay usable across threads (`Cell` is
/// `!Sync`, and the intra-run parallel engine translates through
/// `&PageTableSet` from several speculation workers at once). The hint
/// is purely an accelerator — `region_pos` re-validates it against the
/// sorted region vector before trusting it, and a stale or racing value
/// only costs one binary search — so any memory ordering is sound;
/// acquire/release is used because the audit's determinism policy
/// reserves `Relaxed` for allow-listed host-side counters.
struct RegionHint(AtomicUsize);

impl RegionHint {
    fn get(&self) -> usize {
        self.0.load(Ordering::Acquire)
    }

    fn set(&self, pos: usize) {
        self.0.store(pos, Ordering::Release)
    }
}

impl Clone for RegionHint {
    fn clone(&self) -> Self {
        RegionHint(AtomicUsize::new(self.get()))
    }
}

impl std::fmt::Debug for RegionHint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

/// A single application's four-level page table.
///
/// # Examples
///
/// ```
/// use mosaic_vm::{PageTable, AppId, VirtPageNum, PhysFrameNum, PageSize};
///
/// let mut pt = PageTable::new(AppId(0));
/// pt.map_base(VirtPageNum(0), PhysFrameNum(512)).unwrap();
/// let t = pt.translate(VirtPageNum(0).addr()).unwrap();
/// assert_eq!(t.frame, PhysFrameNum(512));
/// assert_eq!(t.size, PageSize::Base);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    asid: AppId,
    /// Physical address of the root (L1) node; the per-SM PTBR points here.
    root: PhysAddr,
    /// L2 node addresses, direct-indexed by the 9-bit L1 index
    /// (`PhysAddr(0)` = no node: real nodes live at `NODE_REGION_BASE+`).
    l2_nodes: Box<[PhysAddr; 512]>,
    /// L3 node addresses, keyed by (L1 index, L2 index), sorted.
    l3_nodes: Vec<((u64, u64), PhysAddr)>,
    /// Leaf regions, sorted by large page number.
    regions: Vec<(LargePageNum, L3Region)>,
    /// Index into `regions` of the most recently probed region — accesses
    /// rarely leave a 2 MB region between consecutive translations.
    region_hint: RegionHint,
    /// Bump allocator for page-table node addresses.
    next_node: u64,
    mapped_base_pages: u64,
}

/// Mask yielding the 9-bit radix index for each level.
fn level_indices(addr: VirtAddr) -> [u64; 4] {
    let v = addr.raw();
    [(v >> 39) & 0x1ff, (v >> 30) & 0x1ff, (v >> 21) & 0x1ff, (v >> 12) & 0x1ff]
}

impl PageTable {
    /// Page-table nodes are modelled in a reserved physical region so their
    /// addresses never collide with data frames: 1 TiB + 4 GiB per ASID.
    const NODE_REGION_BASE: u64 = 1 << 40;
    const NODE_REGION_STRIDE: u64 = 1 << 32;
    const NODE_SIZE: u64 = 4096;

    /// Creates an empty table for `asid`.
    pub fn new(asid: AppId) -> Self {
        let region = Self::NODE_REGION_BASE + u64::from(asid.0) * Self::NODE_REGION_STRIDE;
        let mut pt = PageTable {
            asid,
            root: PhysAddr(0),
            l2_nodes: Box::new([PhysAddr(0); 512]),
            l3_nodes: Vec::new(),
            regions: Vec::new(),
            region_hint: RegionHint(AtomicUsize::new(0)),
            next_node: region,
            mapped_base_pages: 0,
        };
        pt.root = pt.alloc_node();
        pt
    }

    fn alloc_node(&mut self) -> PhysAddr {
        let a = PhysAddr(self.next_node);
        self.next_node += Self::NODE_SIZE;
        a
    }

    /// Position of `lpn` in the sorted region vector, hint-first.
    #[inline]
    fn region_pos(&self, lpn: LargePageNum) -> Option<usize> {
        let hint = self.region_hint.get();
        if let Some((l, _)) = self.regions.get(hint) {
            if *l == lpn {
                return Some(hint);
            }
        }
        match self.regions.binary_search_by_key(&lpn, |(l, _)| *l) {
            Ok(pos) => {
                self.region_hint.set(pos);
                Some(pos)
            }
            Err(_) => None,
        }
    }

    #[inline]
    fn region(&self, lpn: LargePageNum) -> Option<&L3Region> {
        self.region_pos(lpn).map(|p| &self.regions[p].1)
    }

    fn region_mut(&mut self, lpn: LargePageNum) -> Option<&mut L3Region> {
        let pos = self.region_pos(lpn)?;
        Some(&mut self.regions[pos].1)
    }

    /// The region for `lpn`, created empty if absent.
    fn region_or_insert(&mut self, lpn: LargePageNum) -> &mut L3Region {
        let pos = match self.region_pos(lpn) {
            Some(pos) => pos,
            None => {
                let pos = self
                    .regions
                    .binary_search_by_key(&lpn, |(l, _)| *l)
                    .expect_err("region_pos said absent");
                let node = self.alloc_node();
                self.regions.insert(
                    pos,
                    (
                        lpn,
                        L3Region {
                            large: false,
                            large_frame: None,
                            l4_node: node,
                            entries: L4Table::new(),
                        },
                    ),
                );
                self.region_hint.set(pos);
                pos
            }
        };
        &mut self.regions[pos].1
    }

    /// The address space this table translates.
    pub fn asid(&self) -> AppId {
        self.asid
    }

    /// Physical address of the root node (the PTBR value).
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// Number of base pages currently mapped.
    pub fn mapped_base_pages(&self) -> u64 {
        self.mapped_base_pages
    }

    /// Maps a virtual base page to a physical base frame.
    ///
    /// # Errors
    ///
    /// Returns `Err(frame)` with the existing mapping if the page is
    /// already mapped.
    pub fn map_base(&mut self, vpn: VirtPageNum, frame: PhysFrameNum) -> Result<(), PhysFrameNum> {
        let addr = vpn.addr();
        let [i1, i2, _, _] = level_indices(addr);
        if self.l2_nodes[i1 as usize] == PhysAddr(0) {
            let n = self.alloc_node();
            self.l2_nodes[i1 as usize] = n;
        }
        if self.l3_nodes.binary_search_by_key(&(i1, i2), |(k, _)| *k).is_err() {
            let n = self.alloc_node();
            let pos = self
                .l3_nodes
                .binary_search_by_key(&(i1, i2), |(k, _)| *k)
                .expect_err("just probed");
            self.l3_nodes.insert(pos, ((i1, i2), n));
        }
        let lpn = vpn.large_page();
        let region = self.region_or_insert(lpn);
        let disabled = region.large;
        match region.entries.try_insert(vpn.index_in_large(), L4Pte { frame, disabled }) {
            Ok(()) => {
                self.mapped_base_pages += 1;
                Ok(())
            }
            Err(existing) => Err(existing),
        }
    }

    /// Removes the mapping for a base page, returning the frame it pointed
    /// to, or `None` if the page was not mapped.
    ///
    /// Deallocating inside a coalesced region is allowed (the paper's
    /// Section 4.4): the large mapping keeps covering the region, and the
    /// freed base frame stays unusable until CAC splinters the page.
    pub fn unmap_base(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let index = vpn.index_in_large();
        let region = self.region_mut(vpn.large_page())?;
        let removed = region.entries.remove(index);
        if removed.is_some() {
            self.mapped_base_pages -= 1;
        }
        removed
    }

    /// Changes the physical frame a mapped base page points to (used by
    /// CAC's compaction migration).
    ///
    /// # Errors
    ///
    /// Returns [`TranslationError::NotMapped`] if the page is not mapped.
    pub fn remap_base(
        &mut self,
        vpn: VirtPageNum,
        new_frame: PhysFrameNum,
    ) -> Result<PhysFrameNum, TranslationError> {
        let index = vpn.index_in_large();
        let region = self.region_mut(vpn.large_page()).ok_or(TranslationError::NotMapped)?;
        region.entries.set_frame(index, new_frame).ok_or(TranslationError::NotMapped)
    }

    /// Translates a virtual address.
    ///
    /// If the containing region is coalesced, the translation is served at
    /// [`PageSize::Large`] (the mapping read, per Figure 7b, from the first
    /// L4 PTE: its high bits *are* the large-frame number because the
    /// coalescer never migrates data). Otherwise the base-page PTE is used.
    ///
    /// # Errors
    ///
    /// [`TranslationError::NotMapped`] if no valid mapping covers the
    /// address.
    #[inline]
    pub fn translate(&self, addr: VirtAddr) -> Result<Translation, TranslationError> {
        let vpn = addr.base_page();
        let region = self.region(vpn.large_page()).ok_or(TranslationError::NotMapped)?;
        if region.large {
            // Large mapping: offset within the large frame is preserved.
            let lf = region.large_frame.ok_or(TranslationError::NotMapped)?;
            Ok(Translation { frame: lf.base_frame(vpn.index_in_large()), size: PageSize::Large })
        } else {
            let pte =
                region.entries.get(vpn.index_in_large()).ok_or(TranslationError::NotMapped)?;
            Ok(Translation { frame: pte.frame, size: PageSize::Base })
        }
    }

    /// Whether the given base page has a mapping (independent of
    /// coalescing state).
    pub fn is_mapped(&self, vpn: VirtPageNum) -> bool {
        self.region(vpn.large_page()).is_some_and(|r| r.entries.get(vpn.index_in_large()).is_some())
    }

    /// Whether the region containing `lpn` is currently coalesced.
    pub fn is_coalesced(&self, lpn: LargePageNum) -> bool {
        self.region(lpn).is_some_and(|r| r.large)
    }

    /// Number of mapped base pages within a large page (`0..=512`).
    pub fn mapped_in_large(&self, lpn: LargePageNum) -> u64 {
        self.region(lpn).map_or(0, |r| r.entries.len())
    }

    /// Checks the In-Place Coalescer's precondition: all 512 base pages
    /// mapped, physically contiguous, and aligned within one large frame.
    pub fn can_coalesce(&self, lpn: LargePageNum) -> Result<LargeFrameNum, CoalesceError> {
        let region = self.region(lpn).ok_or(CoalesceError::NotFullyPopulated)?;
        if region.large {
            return Err(CoalesceError::AlreadyCoalesced);
        }
        if region.entries.len() != BASE_PAGES_PER_LARGE_PAGE {
            return Err(CoalesceError::NotFullyPopulated);
        }
        let first = region.entries.get(0).ok_or(CoalesceError::NotContiguous)?;
        if first.frame.index_in_large() != 0 {
            return Err(CoalesceError::NotContiguous);
        }
        let lf = first.frame.large_frame();
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            let pte = region.entries.get(i).ok_or(CoalesceError::NotContiguous)?;
            if pte.frame != lf.base_frame(i) {
                return Err(CoalesceError::NotContiguous);
            }
        }
        Ok(lf)
    }

    /// Coalesces a fully-populated, contiguous large page region in place:
    /// sets the L3 large-page bit (one atomic store in hardware) and then
    /// the disabled bits on the 512 L4 PTEs. No frame numbers change and no
    /// TLB flush is required (Section 4.3).
    ///
    /// Returns the large frame now mapped.
    ///
    /// # Errors
    ///
    /// Any [`CoalesceError`] from [`PageTable::can_coalesce`].
    pub fn coalesce(&mut self, lpn: LargePageNum) -> Result<LargeFrameNum, CoalesceError> {
        let lf = self.can_coalesce(lpn)?;
        // A missing region means no base page is mapped; can_coalesce
        // rejects that, so this branch is unreachable — but the rejection
        // it would represent is NotFullyPopulated, not a crash.
        let Some(region) = self.region_mut(lpn) else {
            return Err(CoalesceError::NotFullyPopulated);
        };
        region.large = true;
        region.large_frame = Some(lf);
        region.entries.set_all_disabled(true);
        Ok(lf)
    }

    /// Splinters a coalesced large page back into base pages: clears the
    /// disabled bits, then atomically clears the large-page bit
    /// (Section 4.4). The caller must flush the TLB's large-page entry.
    ///
    /// Returns `true` if the region was coalesced.
    pub fn splinter(&mut self, lpn: LargePageNum) -> bool {
        match self.region_mut(lpn) {
            Some(region) if region.large => {
                region.entries.set_all_disabled(false);
                region.large = false;
                region.large_frame = None;
                true
            }
            _ => false,
        }
    }

    /// The four physical PTE addresses a hardware page-table walk for
    /// `addr` dereferences, in order (L1, L2, L3, L4). Returned even for
    /// unmapped addresses (a walk discovers the fault by reading the
    /// tables).
    ///
    /// For a coalesced region the fourth access reads the *first* L4 PTE of
    /// the child table (Figure 7b) instead of the faulting page's own PTE.
    pub fn walk_path(&self, addr: VirtAddr) -> [PhysAddr; 4] {
        let [i1, i2, i3, i4] = level_indices(addr);
        let l1_entry = PhysAddr(self.root.raw() + i1 * 8);
        let l2_node = match self.l2_nodes[i1 as usize] {
            PhysAddr(0) => self.root,
            node => node,
        };
        let l2_entry = PhysAddr(l2_node.raw() + i2 * 8);
        let l3_node = self
            .l3_nodes
            .binary_search_by_key(&(i1, i2), |(k, _)| *k)
            .map(|pos| self.l3_nodes[pos].1)
            .unwrap_or(l2_node);
        let l3_entry = PhysAddr(l3_node.raw() + i3 * 8);
        let region = self.region(addr.base_page().large_page());
        let (l4_node, l4_index) = match region {
            Some(r) if r.large => (r.l4_node, 0),
            Some(r) => (r.l4_node, i4),
            None => (l3_node, i4),
        };
        let l4_entry = PhysAddr(l4_node.raw() + l4_index * 8);
        [l1_entry, l2_entry, l3_entry, l4_entry]
    }

    /// Iterates over mapped `(virtual page, frame, disabled)` triples of
    /// one large page region, in index order.
    pub fn region_mappings(
        &self,
        lpn: LargePageNum,
    ) -> impl Iterator<Item = (VirtPageNum, PhysFrameNum, bool)> + '_ {
        self.region(lpn)
            .into_iter()
            .flat_map(move |r| r.entries.iter())
            .map(move |(i, pte)| (lpn.base_page(i), pte.frame, pte.disabled))
    }

    /// Iterates over all large page numbers with at least one mapping.
    pub fn mapped_regions(&self) -> impl Iterator<Item = LargePageNum> + '_ {
        self.regions.iter().filter(|(_, r)| r.entries.len() > 0).map(|(lpn, _)| *lpn)
    }

    /// Iterates every live base mapping of this address space as
    /// `(virtual page, frame, disabled)`, across all regions in page
    /// order. This is the oracle-visible view of the whole table used by
    /// the conformance harness to diff the real implementation against a
    /// flat reference model.
    pub fn mappings(&self) -> impl Iterator<Item = (VirtPageNum, PhysFrameNum, bool)> + '_ {
        self.regions.iter().flat_map(|(lpn, r)| {
            r.entries.iter().map(move |(i, pte)| (lpn.base_page(i), pte.frame, pte.disabled))
        })
    }

    /// The large frame a coalesced region maps to, or `None` if `lpn` is
    /// not coalesced.
    pub fn large_frame_of(&self, lpn: LargePageNum) -> Option<LargeFrameNum> {
        self.region(lpn).filter(|r| r.large).and_then(|r| r.large_frame)
    }
}

/// The set of page tables for all applications sharing the GPU.
///
/// Provides the PTBR lookup the walker performs (step 3 of Figure 2) and
/// convenience accessors used by the memory managers. Workloads run a
/// handful of applications, so the set is a small vector kept sorted by
/// ASID and scanned linearly — `table` is on the per-access hot path.
#[derive(Debug, Default)]
pub struct PageTableSet {
    tables: Vec<PageTable>,
}

impl PageTableSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the table for `asid`, creating an empty one on first use.
    pub fn table_mut(&mut self, asid: AppId) -> &mut PageTable {
        let pos = match self.tables.binary_search_by_key(&asid, |t| t.asid()) {
            Ok(pos) => pos,
            Err(pos) => {
                self.tables.insert(pos, PageTable::new(asid));
                pos
            }
        };
        &mut self.tables[pos]
    }

    /// Returns the table for `asid` if it exists.
    #[inline]
    pub fn table(&self, asid: AppId) -> Option<&PageTable> {
        self.tables.iter().find(|t| t.asid() == asid)
    }

    /// Iterates over all `(asid, table)` pairs in ASID order.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &PageTable)> {
        self.tables.iter().map(|t| (t.asid(), t))
    }

    /// Total base pages mapped across all address spaces.
    pub fn total_mapped(&self) -> u64 {
        self.tables.iter().map(|t| t.mapped_base_pages()).sum()
    }
}

impl AuditInvariants for PageTable {
    fn audit_component(&self) -> &'static str {
        "page-table"
    }

    /// Structural coherence of one address space's radix table:
    /// cached mapping counts, region geometry, and the coalesced-region
    /// contract (complete, contiguous, aligned, disabled bits set).
    fn audit(&self, report: &mut AuditReport) {
        let c = self.audit_component();
        let asid = self.asid;
        let counted: u64 = self.regions.iter().map(|(_, r)| r.entries.len()).sum();
        report.check(c, counted == self.mapped_base_pages, || {
            format!(
                "{asid}: cached mapped_base_pages {} != {} entries present",
                self.mapped_base_pages, counted
            )
        });
        report.check(c, self.regions.windows(2).all(|w| w[0].0 < w[1].0), || {
            format!("{asid}: region vector is not sorted/deduplicated")
        });
        for (lpn, region) in &self.regions {
            let lpn = *lpn;
            // Index range is enforced structurally (512 fixed slots), so
            // the old out-of-range check has nothing left to observe.
            if region.large {
                let lf = region.large_frame;
                report.check(c, lf.is_some(), || {
                    format!("{asid}: {lpn} is coalesced but records no large frame")
                });
                // No completeness check: deallocation inside a coalesced
                // region is legal until CAC splinters it (Section 4.4), and
                // with CAC disabled a drained region stays coalesced — so a
                // coalesced region may hold anywhere from 0 to 512 entries.
                if let Some(lf) = lf {
                    report.check(
                        c,
                        region.entries.iter().all(|(i, pte)| pte.frame == lf.base_frame(i)),
                        || {
                            format!(
                                "{asid}: {lpn} is coalesced into {lf} but some PTE is not \
                                 contiguous/aligned within it"
                            )
                        },
                    );
                }
                report.check(c, region.entries.iter().all(|(_, pte)| pte.disabled), || {
                    format!("{asid}: {lpn} is coalesced but has an enabled L4 PTE")
                });
            } else {
                report.check(c, region.large_frame.is_none(), || {
                    format!("{asid}: {lpn} is not coalesced yet records a large frame")
                });
                report.check(c, region.entries.iter().all(|(_, pte)| !pte.disabled), || {
                    format!("{asid}: {lpn} is not coalesced but has a disabled L4 PTE")
                });
            }
        }
    }
}

impl AuditInvariants for PageTableSet {
    fn audit_component(&self) -> &'static str {
        "page-table-set"
    }

    /// Audits every table, then checks the cross-address-space exclusivity
    /// invariant: no physical base frame is mapped twice (by two virtual
    /// pages of any address spaces) — the property that makes in-place
    /// coalescing safe.
    fn audit(&self, report: &mut AuditReport) {
        let c = self.audit_component();
        report.check(c, self.tables.windows(2).all(|w| w[0].asid() < w[1].asid()), || {
            "page-table set is not sorted/deduplicated by ASID".to_string()
        });
        for table in &self.tables {
            table.audit(report);
        }
        let mut seen: BTreeMap<PhysFrameNum, (AppId, VirtPageNum)> = BTreeMap::new();
        for (asid, table) in self.iter() {
            for lpn in table.mapped_regions() {
                for (vpn, pfn, _) in table.region_mappings(lpn) {
                    if let Some(&(other_asid, other_vpn)) = seen.get(&pfn) {
                        report.check(c, false, || {
                            format!(
                                "{pfn} is mapped twice: by {other_asid}/{other_vpn} \
                                 and by {asid}/{vpn}"
                            )
                        });
                    } else {
                        seen.insert(pfn, (asid, vpn));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_contiguous(pt: &mut PageTable, lpn: LargePageNum, lf: LargeFrameNum) {
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
        }
    }

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new(AppId(1));
        let vpn = VirtPageNum(1000);
        pt.map_base(vpn, PhysFrameNum(77)).unwrap();
        assert!(pt.is_mapped(vpn));
        let t = pt.translate(vpn.addr()).unwrap();
        assert_eq!(t.frame, PhysFrameNum(77));
        assert_eq!(t.size, PageSize::Base);
        assert_eq!(pt.unmap_base(vpn), Some(PhysFrameNum(77)));
        assert_eq!(pt.translate(vpn.addr()), Err(TranslationError::NotMapped));
        assert_eq!(pt.mapped_base_pages(), 0);
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new(AppId(0));
        pt.map_base(VirtPageNum(5), PhysFrameNum(1)).unwrap();
        assert_eq!(pt.map_base(VirtPageNum(5), PhysFrameNum(2)), Err(PhysFrameNum(1)));
        // Original mapping is untouched.
        assert_eq!(pt.translate(VirtPageNum(5).addr()).unwrap().frame, PhysFrameNum(1));
    }

    #[test]
    fn coalesce_requires_full_population() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(4);
        let lf = LargeFrameNum(9);
        pt.map_base(lpn.base_page(0), lf.base_frame(0)).unwrap();
        assert_eq!(pt.can_coalesce(lpn), Err(CoalesceError::NotFullyPopulated));
    }

    #[test]
    fn coalesce_requires_contiguity_and_alignment() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(4);
        let lf = LargeFrameNum(9);
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            // Swap two frames to break contiguity.
            let j = match i {
                3 => 4,
                4 => 3,
                other => other,
            };
            pt.map_base(lpn.base_page(i), lf.base_frame(j)).unwrap();
        }
        assert_eq!(pt.can_coalesce(lpn), Err(CoalesceError::NotContiguous));
    }

    #[test]
    fn coalesce_misaligned_rejected() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(4);
        // Contiguous but starting at index 1 of the large frame: the first
        // base page is not large-frame aligned.
        for i in 0..BASE_PAGES_PER_LARGE_PAGE {
            pt.map_base(lpn.base_page(i), PhysFrameNum(9 * 512 + 1 + i)).unwrap();
        }
        assert_eq!(pt.can_coalesce(lpn), Err(CoalesceError::NotContiguous));
    }

    #[test]
    fn coalesce_translates_as_large_without_migration() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(4);
        let lf = LargeFrameNum(9);
        full_contiguous(&mut pt, lpn, lf);
        let before = pt.translate(lpn.base_page(17).addr()).unwrap();
        assert_eq!(before.size, PageSize::Base);

        assert_eq!(pt.coalesce(lpn), Ok(lf));
        assert!(pt.is_coalesced(lpn));
        let after = pt.translate(lpn.base_page(17).addr()).unwrap();
        // Same frame as before — the coalesce moved no data.
        assert_eq!(after.frame, before.frame);
        assert_eq!(after.size, PageSize::Large);

        assert_eq!(pt.coalesce(lpn), Err(CoalesceError::AlreadyCoalesced));
    }

    #[test]
    fn splinter_reverses_coalesce() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(2);
        let lf = LargeFrameNum(3);
        full_contiguous(&mut pt, lpn, lf);
        pt.coalesce(lpn).unwrap();
        assert!(pt.splinter(lpn));
        assert!(!pt.is_coalesced(lpn));
        let t = pt.translate(lpn.base_page(100).addr()).unwrap();
        assert_eq!(t.size, PageSize::Base);
        assert_eq!(t.frame, lf.base_frame(100));
        // Splintering an uncoalesced page is a no-op.
        assert!(!pt.splinter(lpn));
    }

    #[test]
    fn dealloc_inside_coalesced_keeps_large_mapping() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(6);
        let lf = LargeFrameNum(8);
        full_contiguous(&mut pt, lpn, lf);
        pt.coalesce(lpn).unwrap();
        pt.unmap_base(lpn.base_page(42));
        assert_eq!(pt.mapped_in_large(lpn), 511);
        // Translation of the deallocated page still resolves through the
        // large mapping (the region is still coalesced).
        let t = pt.translate(lpn.base_page(42).addr()).unwrap();
        assert_eq!(t.size, PageSize::Large);
        // Even deallocating the FIRST base page must not lose the large
        // mapping: hardware reads it from the first L4 PTE's surviving
        // high bits (Figure 7b).
        pt.unmap_base(lpn.base_page(0));
        let t = pt.translate(lpn.base_page(7).addr()).unwrap();
        assert_eq!(t.size, PageSize::Large);
        assert_eq!(t.frame, lf.base_frame(7));
    }

    #[test]
    fn walk_path_is_four_distinct_levels() {
        let mut pt = PageTable::new(AppId(0));
        let vpn = VirtPageNum(123_456);
        pt.map_base(vpn, PhysFrameNum(1)).unwrap();
        let path = pt.walk_path(vpn.addr());
        assert_eq!(path.len(), 4);
        // All four accesses land in the reserved node region.
        for a in path {
            assert!(a.raw() >= PageTable::NODE_REGION_BASE);
        }
    }

    #[test]
    fn walk_path_reads_first_l4_pte_when_coalesced() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(4);
        full_contiguous(&mut pt, lpn, LargeFrameNum(9));
        let addr = lpn.base_page(300).addr();
        let before = pt.walk_path(addr);
        pt.coalesce(lpn).unwrap();
        let after = pt.walk_path(addr);
        assert_eq!(before[..3], after[..3]);
        assert_ne!(before[3], after[3], "coalesced walk reads the first L4 PTE");
        assert_eq!(after[3].raw() % 4096, 0, "first PTE sits at node base");
    }

    #[test]
    fn remap_base_changes_frame() {
        let mut pt = PageTable::new(AppId(0));
        let vpn = VirtPageNum(9);
        pt.map_base(vpn, PhysFrameNum(10)).unwrap();
        assert_eq!(pt.remap_base(vpn, PhysFrameNum(20)), Ok(PhysFrameNum(10)));
        assert_eq!(pt.translate(vpn.addr()).unwrap().frame, PhysFrameNum(20));
        assert_eq!(
            pt.remap_base(VirtPageNum(1000), PhysFrameNum(1)),
            Err(TranslationError::NotMapped)
        );
    }

    #[test]
    fn region_mappings_in_order() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(1);
        pt.map_base(lpn.base_page(10), PhysFrameNum(110)).unwrap();
        pt.map_base(lpn.base_page(2), PhysFrameNum(102)).unwrap();
        let m: Vec<_> = pt.region_mappings(lpn).collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], (lpn.base_page(2), PhysFrameNum(102), false));
        assert_eq!(m[1], (lpn.base_page(10), PhysFrameNum(110), false));
    }

    #[test]
    fn mappings_walks_every_region_in_order() {
        let mut pt = PageTable::new(AppId(0));
        pt.map_base(LargePageNum(3).base_page(7), PhysFrameNum(1)).unwrap();
        pt.map_base(LargePageNum(1).base_page(2), PhysFrameNum(2)).unwrap();
        pt.map_base(LargePageNum(1).base_page(9), PhysFrameNum(3)).unwrap();
        let all: Vec<_> = pt.mappings().collect();
        assert_eq!(
            all,
            vec![
                (LargePageNum(1).base_page(2), PhysFrameNum(2), false),
                (LargePageNum(1).base_page(9), PhysFrameNum(3), false),
                (LargePageNum(3).base_page(7), PhysFrameNum(1), false),
            ]
        );
    }

    #[test]
    fn large_frame_of_tracks_coalesce_state() {
        let mut pt = PageTable::new(AppId(0));
        let lpn = LargePageNum(2);
        let lf = LargeFrameNum(5);
        assert_eq!(pt.large_frame_of(lpn), None);
        full_contiguous(&mut pt, lpn, lf);
        assert_eq!(pt.large_frame_of(lpn), None, "not coalesced yet");
        pt.coalesce(lpn).unwrap();
        assert_eq!(pt.large_frame_of(lpn), Some(lf));
        pt.splinter(lpn);
        assert_eq!(pt.large_frame_of(lpn), None);
    }

    #[test]
    fn region_hint_survives_interleaved_regions() {
        // Alternate lookups across regions so every probe misses the hint,
        // then repeat within one region so every probe hits it; both paths
        // must agree with the ground truth.
        let mut pt = PageTable::new(AppId(0));
        for r in 0..8u64 {
            pt.map_base(LargePageNum(r * 5 + 1).base_page(r), PhysFrameNum(1000 + r)).unwrap();
        }
        for _ in 0..3 {
            for r in 0..8u64 {
                let lpn = LargePageNum(r * 5 + 1);
                assert_eq!(
                    pt.translate(lpn.base_page(r).addr()).unwrap().frame,
                    PhysFrameNum(1000 + r)
                );
                assert!(!pt.is_mapped(lpn.base_page(r + 1)));
            }
        }
        // Inserting a region below all others shifts every index the hint
        // may be caching; lookups must still resolve correctly.
        pt.map_base(LargePageNum(0).base_page(0), PhysFrameNum(999)).unwrap();
        assert_eq!(
            pt.translate(LargePageNum(0).base_page(0).addr()).unwrap().frame,
            PhysFrameNum(999)
        );
        for r in 0..8u64 {
            let lpn = LargePageNum(r * 5 + 1);
            assert_eq!(
                pt.translate(lpn.base_page(r).addr()).unwrap().frame,
                PhysFrameNum(1000 + r)
            );
        }
    }

    #[test]
    fn page_table_set_isolates_asids() {
        let mut set = PageTableSet::new();
        set.table_mut(AppId(0)).map_base(VirtPageNum(1), PhysFrameNum(100)).unwrap();
        set.table_mut(AppId(1)).map_base(VirtPageNum(1), PhysFrameNum(200)).unwrap();
        assert_eq!(
            set.table(AppId(0)).unwrap().translate(VirtPageNum(1).addr()).unwrap().frame,
            PhysFrameNum(100)
        );
        assert_eq!(
            set.table(AppId(1)).unwrap().translate(VirtPageNum(1).addr()).unwrap().frame,
            PhysFrameNum(200)
        );
        assert_eq!(set.total_mapped(), 2);
        // Distinct roots: protection domains are separate tables.
        assert_ne!(set.table(AppId(0)).unwrap().root(), set.table(AppId(1)).unwrap().root());
    }

    #[test]
    fn page_table_set_iterates_in_asid_order() {
        let mut set = PageTableSet::new();
        // Create out of order; iteration must still be ascending (the
        // audit and conformance oracle depend on it).
        set.table_mut(AppId(3));
        set.table_mut(AppId(0));
        set.table_mut(AppId(2));
        let order: Vec<_> = set.iter().map(|(a, _)| a).collect();
        assert_eq!(order, vec![AppId(0), AppId(2), AppId(3)]);
    }
}
