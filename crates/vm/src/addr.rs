//! Typed addresses and page geometry.
//!
//! The paper uses the conventional x86-64 geometry: 4 KB *base pages* and
//! 2 MB *large pages*, so one large page frame holds exactly 512
//! contiguous, aligned base pages. All address manipulation in the
//! workspace goes through the newtypes in this module; raw `u64`s never
//! cross crate boundaries.

use std::fmt;

/// Size of a base page in bytes (4 KB).
pub const BASE_PAGE_SIZE: u64 = 4 * 1024;
/// Size of a large page in bytes (2 MB).
pub const LARGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// Number of base pages per large page frame (512).
pub const BASE_PAGES_PER_LARGE_PAGE: u64 = LARGE_PAGE_SIZE / BASE_PAGE_SIZE;

const BASE_SHIFT: u32 = 12;
const LARGE_SHIFT: u32 = 21;

/// The page size used to translate an address — the fundamental trade-off
/// the paper is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KB base page.
    Base,
    /// 2 MB large page.
    Large,
}

impl PageSize {
    /// Size of this page class in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base => BASE_PAGE_SIZE,
            PageSize::Large => LARGE_PAGE_SIZE,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base => write!(f, "4KB"),
            PageSize::Large => write!(f, "2MB"),
        }
    }
}

/// An address-space identifier — one per application (memory protection
/// domain). The paper extends shared TLB entries with ASIDs so multiple
/// applications can share the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }
    };
}

addr_newtype! {
    /// A byte address in an application's virtual address space.
    VirtAddr
}
addr_newtype! {
    /// A byte address in GPU physical memory.
    PhysAddr
}
addr_newtype! {
    /// A virtual base-page number (virtual address >> 12).
    VirtPageNum
}
addr_newtype! {
    /// A physical base-frame number (physical address >> 12).
    PhysFrameNum
}
addr_newtype! {
    /// A virtual large-page number (virtual address >> 21).
    LargePageNum
}
addr_newtype! {
    /// A physical large-frame number (physical address >> 21): a
    /// contiguous, page-aligned 2 MB region of physical memory.
    LargeFrameNum
}

impl VirtAddr {
    /// The base page containing this address.
    #[inline]
    pub const fn base_page(self) -> VirtPageNum {
        VirtPageNum(self.0 >> BASE_SHIFT)
    }

    /// The large page containing this address.
    #[inline]
    pub const fn large_page(self) -> LargePageNum {
        LargePageNum(self.0 >> LARGE_SHIFT)
    }

    /// Byte offset within the containing base page.
    #[inline]
    pub const fn base_offset(self) -> u64 {
        self.0 & (BASE_PAGE_SIZE - 1)
    }

    /// Byte offset within the containing large page.
    #[inline]
    pub const fn large_offset(self) -> u64 {
        self.0 & (LARGE_PAGE_SIZE - 1)
    }
}

impl VirtPageNum {
    /// First byte address of this page.
    #[inline]
    pub const fn addr(self) -> VirtAddr {
        VirtAddr(self.0 << BASE_SHIFT)
    }

    /// The large page containing this base page.
    #[inline]
    pub const fn large_page(self) -> LargePageNum {
        LargePageNum(self.0 / BASE_PAGES_PER_LARGE_PAGE)
    }

    /// Index of this base page within its large page (`0..512`).
    #[inline]
    pub const fn index_in_large(self) -> u64 {
        self.0 % BASE_PAGES_PER_LARGE_PAGE
    }

    /// Whether this base page is the first page of (aligned to) a large page.
    #[inline]
    pub const fn is_large_aligned(self) -> bool {
        self.index_in_large() == 0
    }
}

impl LargePageNum {
    /// First byte address of this large page.
    #[inline]
    pub const fn addr(self) -> VirtAddr {
        VirtAddr(self.0 << LARGE_SHIFT)
    }

    /// The `i`-th base page within this large page.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= 512`.
    #[inline]
    pub fn base_page(self, i: u64) -> VirtPageNum {
        debug_assert!(i < BASE_PAGES_PER_LARGE_PAGE);
        VirtPageNum(self.0 * BASE_PAGES_PER_LARGE_PAGE + i)
    }

    /// Iterates over all 512 base pages of this large page.
    pub fn base_pages(self) -> impl DoubleEndedIterator<Item = VirtPageNum> {
        let first = self.0 * BASE_PAGES_PER_LARGE_PAGE;
        (first..first + BASE_PAGES_PER_LARGE_PAGE).map(VirtPageNum)
    }
}

impl PhysAddr {
    /// The physical base frame containing this address.
    #[inline]
    pub const fn base_frame(self) -> PhysFrameNum {
        PhysFrameNum(self.0 >> BASE_SHIFT)
    }

    /// The physical large frame containing this address.
    #[inline]
    pub const fn large_frame(self) -> LargeFrameNum {
        LargeFrameNum(self.0 >> LARGE_SHIFT)
    }
}

impl PhysFrameNum {
    /// First byte address of this frame.
    #[inline]
    pub const fn addr(self) -> PhysAddr {
        PhysAddr(self.0 << BASE_SHIFT)
    }

    /// The large frame containing this base frame.
    #[inline]
    pub const fn large_frame(self) -> LargeFrameNum {
        LargeFrameNum(self.0 / BASE_PAGES_PER_LARGE_PAGE)
    }

    /// Index of this base frame within its large frame (`0..512`).
    #[inline]
    pub const fn index_in_large(self) -> u64 {
        self.0 % BASE_PAGES_PER_LARGE_PAGE
    }
}

impl LargeFrameNum {
    /// First byte address of this large frame.
    #[inline]
    pub const fn addr(self) -> PhysAddr {
        PhysAddr(self.0 << LARGE_SHIFT)
    }

    /// The `i`-th base frame within this large frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= 512`.
    #[inline]
    pub fn base_frame(self, i: u64) -> PhysFrameNum {
        debug_assert!(i < BASE_PAGES_PER_LARGE_PAGE);
        PhysFrameNum(self.0 * BASE_PAGES_PER_LARGE_PAGE + i)
    }

    /// Iterates over all 512 base frames of this large frame.
    pub fn base_frames(self) -> impl DoubleEndedIterator<Item = PhysFrameNum> {
        let first = self.0 * BASE_PAGES_PER_LARGE_PAGE;
        (first..first + BASE_PAGES_PER_LARGE_PAGE).map(PhysFrameNum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_agree() {
        assert_eq!(BASE_PAGE_SIZE, 1 << BASE_SHIFT);
        assert_eq!(LARGE_PAGE_SIZE, 1 << LARGE_SHIFT);
        assert_eq!(BASE_PAGES_PER_LARGE_PAGE, 512);
    }

    #[test]
    fn virt_addr_decomposition() {
        let a = VirtAddr(0x40_1234);
        assert_eq!(a.base_page(), VirtPageNum(0x401));
        assert_eq!(a.base_offset(), 0x234);
        assert_eq!(a.large_page(), LargePageNum(0x2));
        assert_eq!(a.large_offset(), 0x40_1234 & (LARGE_PAGE_SIZE - 1));
    }

    #[test]
    fn page_round_trip() {
        let p = VirtPageNum(12345);
        assert_eq!(p.addr().base_page(), p);
        let f = PhysFrameNum(999);
        assert_eq!(f.addr().base_frame(), f);
    }

    #[test]
    fn base_to_large_containment() {
        let lp = LargePageNum(7);
        for i in [0u64, 1, 511] {
            let bp = lp.base_page(i);
            assert_eq!(bp.large_page(), lp);
            assert_eq!(bp.index_in_large(), i);
        }
        assert!(lp.base_page(0).is_large_aligned());
        assert!(!lp.base_page(1).is_large_aligned());
    }

    #[test]
    fn large_page_iterates_512_children() {
        let lp = LargePageNum(3);
        let pages: Vec<_> = lp.base_pages().collect();
        assert_eq!(pages.len(), 512);
        assert_eq!(pages[0], lp.base_page(0));
        assert_eq!(pages[511], lp.base_page(511));
        assert!(pages.iter().all(|p| p.large_page() == lp));
    }

    #[test]
    fn phys_frame_containment_mirrors_virtual() {
        let lf = LargeFrameNum(2);
        let frames: Vec<_> = lf.base_frames().collect();
        assert_eq!(frames.len(), 512);
        assert!(frames.iter().all(|f| f.large_frame() == lf));
        assert_eq!(lf.addr().large_frame(), lf);
    }

    #[test]
    fn page_size_bytes() {
        assert_eq!(PageSize::Base.bytes(), 4096);
        assert_eq!(PageSize::Large.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Base.to_string(), "4KB");
        assert_eq!(PageSize::Large.to_string(), "2MB");
    }
}
