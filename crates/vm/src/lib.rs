//! Virtual-memory substrate for the Mosaic reproduction.
//!
//! This crate implements the address-translation hardware the paper builds
//! on (Section 2.2) and extends (Section 4.3):
//!
//! * [`addr`] — typed virtual/physical addresses, base (4 KB) and large
//!   (2 MB) page geometry, and address-space identifiers.
//! * [`page_table`] — per-application four-level page tables with Mosaic's
//!   PTE extensions: the *large-page bit* on L3 entries and the *disabled
//!   bit* on L4 entries, plus the atomic coalesce/splinter transitions of
//!   Sections 4.3 and 4.4.
//! * [`tlb`] — set-associative, ASID-tagged TLBs with the split base/large
//!   entry organization the paper assumes at every level, including
//!   MSHR-style coalescing of concurrent misses to the same page.
//! * [`walker`] — the shared, highly-threaded page-table walker (64
//!   concurrent walks in the paper's configuration) that turns a TLB miss
//!   into a serialized sequence of page-table memory accesses.
//! * [`walk_cache`] — an optional page-walk cache for upper page-table
//!   levels, used by the Section 3.1 ablation (the paper replaces it with
//!   a shared L2 TLB for +14% performance).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod page_table;
pub mod tlb;
pub mod walk_cache;
pub mod walker;

pub use addr::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum,
    BASE_PAGES_PER_LARGE_PAGE, BASE_PAGE_SIZE, LARGE_PAGE_SIZE,
};
pub use page_table::{PageTable, PageTableSet, Translation, TranslationError};
pub use tlb::{Tlb, TlbConfig, TlbLookup, TlbLookupUndo};
pub use walk_cache::WalkCache;
pub use walker::PageTableWalker;
