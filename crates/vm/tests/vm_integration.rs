//! Integration tests across the vm crate's modules: page tables feeding
//! TLBs feeding the walker, as the full simulator wires them.

use mosaic_sim_core::Cycle;
use mosaic_vm::page_table::CoalesceError;
use mosaic_vm::{
    AppId, LargeFrameNum, LargePageNum, PageSize, PageTable, PageTableSet, PageTableWalker,
    PhysFrameNum, Tlb, TlbConfig, TlbLookup, VirtPageNum, WalkCache, BASE_PAGES_PER_LARGE_PAGE,
};

fn full_region(pt: &mut PageTable, lpn: LargePageNum, lf: LargeFrameNum) {
    for i in 0..BASE_PAGES_PER_LARGE_PAGE {
        pt.map_base(lpn.base_page(i), lf.base_frame(i)).unwrap();
    }
}

#[test]
fn walk_then_fill_then_hit_round_trip() {
    let mut pt = PageTable::new(AppId(0));
    let lpn = LargePageNum(3);
    full_region(&mut pt, lpn, LargeFrameNum(7));
    pt.coalesce(lpn).unwrap();

    let mut tlb = Tlb::new(TlbConfig::paper_l1());
    let mut walker = PageTableWalker::new(64);
    let addr = lpn.base_page(17).addr();

    // Miss -> walk -> fill at the translated size -> hit covering the
    // whole 2MB region.
    assert_eq!(tlb.lookup(AppId(0), addr), TlbLookup::Miss);
    let path = pt.walk_path(addr);
    let out = walker.walk(Cycle::ZERO, AppId(0), addr.base_page(), path, |_, _, t| t + 100);
    assert_eq!(out.done, Cycle::new(400));
    let t = pt.translate(addr).unwrap();
    tlb.fill(AppId(0), addr, t.size);
    assert_eq!(t.size, PageSize::Large);
    assert_eq!(t.large_frame(), LargeFrameNum(7));
    assert_eq!(tlb.lookup(AppId(0), lpn.base_page(400).addr()), TlbLookup::HitLarge);
}

#[test]
fn coalesce_error_messages_are_descriptive() {
    assert!(CoalesceError::NotFullyPopulated.to_string().contains("populated"));
    assert!(CoalesceError::NotContiguous.to_string().contains("contiguous"));
    assert!(CoalesceError::AlreadyCoalesced.to_string().contains("already"));
}

#[test]
fn page_table_set_iterates_all_tables() {
    let mut set = PageTableSet::new();
    for a in 0..5u16 {
        set.table_mut(AppId(a)).map_base(VirtPageNum(1), PhysFrameNum(u64::from(a))).unwrap();
    }
    let mut asids: Vec<u16> = set.iter().map(|(a, _)| a.0).collect();
    asids.sort_unstable();
    assert_eq!(asids, vec![0, 1, 2, 3, 4]);
    assert_eq!(set.total_mapped(), 5);
}

#[test]
fn walk_paths_differ_between_address_spaces() {
    let mut set = PageTableSet::new();
    set.table_mut(AppId(0)).map_base(VirtPageNum(9), PhysFrameNum(1)).unwrap();
    set.table_mut(AppId(1)).map_base(VirtPageNum(9), PhysFrameNum(2)).unwrap();
    let p0 = set.table(AppId(0)).unwrap().walk_path(VirtPageNum(9).addr());
    let p1 = set.table(AppId(1)).unwrap().walk_path(VirtPageNum(9).addr());
    // Same virtual address, different protection domains: different
    // page-table nodes at every level.
    for (a, b) in p0.iter().zip(&p1) {
        assert_ne!(a, b);
    }
}

#[test]
fn walk_path_is_defined_for_unmapped_addresses() {
    let pt = PageTable::new(AppId(0));
    // A hardware walk of an unmapped address still dereferences the
    // table (and discovers the fault at some level).
    let path = pt.walk_path(VirtPageNum(123).addr());
    assert_eq!(path.len(), 4);
}

#[test]
fn walker_concurrency_limits_are_visible() {
    let w = PageTableWalker::new(64);
    assert_eq!(w.threads(), 64);
    assert_eq!(w.walks(), 0);
    assert_eq!(w.coalesced_requests(), 0);
    assert_eq!(w.latency().count(), 0);
}

#[test]
fn walk_cache_accelerates_upper_levels_only_by_policy() {
    // The cache itself is level-agnostic; the simulator feeds it levels
    // 0..3. Verify the LRU behaviour the policy depends on.
    let mut pwc = WalkCache::new(3, 4);
    let mut pt = PageTable::new(AppId(0));
    pt.map_base(VirtPageNum(1), PhysFrameNum(1)).unwrap();
    let path = pt.walk_path(VirtPageNum(1).addr());
    for a in &path[..3] {
        assert!(!pwc.access(*a), "cold");
    }
    for a in &path[..3] {
        assert!(pwc.access(*a), "warm upper levels");
    }
    assert_eq!(pwc.occupancy(), 3);
}

#[test]
fn splinter_after_partial_dealloc_keeps_survivors() {
    let mut pt = PageTable::new(AppId(0));
    let lpn = LargePageNum(2);
    let lf = LargeFrameNum(4);
    full_region(&mut pt, lpn, lf);
    pt.coalesce(lpn).unwrap();
    for i in 0..500 {
        pt.unmap_base(lpn.base_page(i));
    }
    assert!(pt.splinter(lpn));
    // The 12 survivors translate at base size to their original frames.
    for i in 500..BASE_PAGES_PER_LARGE_PAGE {
        let t = pt.translate(lpn.base_page(i).addr()).unwrap();
        assert_eq!(t.size, PageSize::Base);
        assert_eq!(t.frame, lf.base_frame(i));
    }
    // The deallocated ones fault.
    assert!(pt.translate(lpn.base_page(0).addr()).is_err());
}
