//! Eviction-notification round-trips for the two paper TLB geometries.
//!
//! `fill` returns the `(asid, page)` pair it displaced so the MMU can keep
//! shadow state coherent; `flush_large` is the invalidation a splinter
//! must issue (Section 4.4). These tests pin both round-trips, LRU
//! recency, and multi-ASID conflict behavior for `paper_l1` (128-entry
//! fully-associative base / 16-entry fully-associative large) and
//! `paper_l2` (512-entry 16-way base / 256-entry fully-associative
//! large).

use mosaic_vm::{AppId, LargePageNum, PageSize, Tlb, TlbConfig, TlbLookup, VirtPageNum};

const A0: AppId = AppId(0);
const A1: AppId = AppId(1);
const A2: AppId = AppId(2);

/// Address of large page `lpn` (its first base page).
fn laddr(lpn: u64) -> mosaic_vm::VirtAddr {
    LargePageNum(lpn).base_page(0).addr()
}

/// Address of base page `vpn`.
fn baddr(vpn: u64) -> mosaic_vm::VirtAddr {
    VirtPageNum(vpn).addr()
}

/// Filling the large array to capacity evicts nothing; the next fill
/// reports exactly the LRU victim, which then misses while the newcomer
/// hits.
fn large_fill_evicts_lru(config: TlbConfig) {
    let capacity = config.large_entries as u64;
    let mut tlb = Tlb::new(config);
    for lpn in 0..capacity {
        assert_eq!(tlb.fill(A0, laddr(lpn), PageSize::Large), None, "no eviction while filling");
    }
    let evicted = tlb.fill(A0, laddr(capacity), PageSize::Large);
    assert_eq!(evicted, Some((A0, 0)), "LRU entry (first filled) is the victim");
    assert_eq!(tlb.peek(A0, laddr(0)), TlbLookup::Miss);
    assert_eq!(tlb.peek(A0, laddr(capacity)), TlbLookup::HitLarge);
}

#[test]
fn paper_l1_large_fill_evicts_lru() {
    large_fill_evicts_lru(TlbConfig::paper_l1());
}

#[test]
fn paper_l2_large_fill_evicts_lru() {
    large_fill_evicts_lru(TlbConfig::paper_l2());
}

/// A lookup refreshes recency: after touching the oldest entry, the next
/// fill evicts the second-oldest instead.
fn lookup_refreshes_recency(config: TlbConfig) {
    let capacity = config.large_entries as u64;
    let mut tlb = Tlb::new(config);
    for lpn in 0..capacity {
        tlb.fill(A0, laddr(lpn), PageSize::Large);
    }
    assert_eq!(tlb.lookup(A0, laddr(0)), TlbLookup::HitLarge);
    let evicted = tlb.fill(A0, laddr(capacity), PageSize::Large);
    assert_eq!(evicted, Some((A0, 1)), "entry 0 was refreshed, entry 1 is now LRU");
    assert_eq!(tlb.peek(A0, laddr(0)), TlbLookup::HitLarge);
}

#[test]
fn paper_l1_lookup_refreshes_recency() {
    lookup_refreshes_recency(TlbConfig::paper_l1());
}

#[test]
fn paper_l2_lookup_refreshes_recency() {
    lookup_refreshes_recency(TlbConfig::paper_l2());
}

/// `flush_large` round-trip: present → flushed (true), absent → false;
/// the slot freed by the flush absorbs the next fill without an eviction.
fn flush_large_round_trip(config: TlbConfig) {
    let capacity = config.large_entries as u64;
    let mut tlb = Tlb::new(config);
    for lpn in 0..capacity {
        tlb.fill(A0, laddr(lpn), PageSize::Large);
    }
    assert!(tlb.flush_large(A0, laddr(3)), "entry was present");
    assert!(!tlb.flush_large(A0, laddr(3)), "second flush finds nothing");
    assert_eq!(tlb.peek(A0, laddr(3)), TlbLookup::Miss);
    assert_eq!(tlb.occupancy(), capacity as usize - 1);
    // The freed slot absorbs a new fill with no victim.
    assert_eq!(tlb.fill(A0, laddr(capacity), PageSize::Large), None);
    assert_eq!(tlb.occupancy(), capacity as usize);
}

#[test]
fn paper_l1_flush_large_round_trip() {
    flush_large_round_trip(TlbConfig::paper_l1());
}

#[test]
fn paper_l2_flush_large_round_trip() {
    flush_large_round_trip(TlbConfig::paper_l2());
}

/// The base and large arrays are independent: flushing the large entry
/// covering an address leaves its base entry intact, and vice versa.
fn arrays_are_independent(config: TlbConfig) {
    let mut tlb = Tlb::new(config);
    let addr = laddr(7);
    tlb.fill(A0, addr, PageSize::Base);
    tlb.fill(A0, addr, PageSize::Large);
    assert_eq!(tlb.peek(A0, addr), TlbLookup::HitLarge, "large entries probe first");

    assert!(tlb.flush_large(A0, addr));
    assert_eq!(tlb.peek(A0, addr), TlbLookup::HitBase, "base entry survives");

    tlb.fill(A0, addr, PageSize::Large);
    assert!(tlb.flush_base(A0, addr));
    assert_eq!(tlb.peek(A0, addr), TlbLookup::HitLarge, "large entry survives");
}

#[test]
fn paper_l1_arrays_are_independent() {
    arrays_are_independent(TlbConfig::paper_l1());
}

#[test]
fn paper_l2_arrays_are_independent() {
    arrays_are_independent(TlbConfig::paper_l2());
}

/// Entries are tagged by ASID: the same page number held by two address
/// spaces occupies two slots, conflicts evict across ASIDs with the
/// correct tag in the notification, and a flush only hits its own ASID.
fn multi_asid_conflicts(config: TlbConfig) {
    let capacity = config.large_entries as u64;
    let mut tlb = Tlb::new(config);
    // Fill to capacity from ASID 0.
    for lpn in 0..capacity {
        tlb.fill(A0, laddr(lpn), PageSize::Large);
    }
    // Same page number, different ASID: a distinct entry, so the fill
    // conflicts and the notification names the *other* address space.
    let evicted = tlb.fill(A1, laddr(0), PageSize::Large);
    assert_eq!(evicted, Some((A0, 0)), "victim tag carries the evicted ASID");
    assert_eq!(tlb.peek(A1, laddr(0)), TlbLookup::HitLarge);
    assert_eq!(tlb.peek(A0, laddr(0)), TlbLookup::Miss);

    // flush_large is ASID-selective: flushing ASID 2 (absent) and ASID 0
    // (absent at page 0 now) must not disturb ASID 1's entry.
    assert!(!tlb.flush_large(A2, laddr(0)));
    assert!(!tlb.flush_large(A0, laddr(0)));
    assert_eq!(tlb.peek(A1, laddr(0)), TlbLookup::HitLarge);
    assert!(tlb.flush_large(A1, laddr(0)));
    assert_eq!(tlb.peek(A1, laddr(0)), TlbLookup::Miss);
}

#[test]
fn paper_l1_multi_asid_conflicts() {
    multi_asid_conflicts(TlbConfig::paper_l1());
}

#[test]
fn paper_l2_multi_asid_conflicts() {
    multi_asid_conflicts(TlbConfig::paper_l2());
}

/// `flush_asid` drops exactly one address space's entries (both arrays)
/// and reports the count; the other address space is untouched.
fn flush_asid_is_selective(config: TlbConfig) {
    let mut tlb = Tlb::new(config);
    for lpn in 0..4 {
        tlb.fill(A0, laddr(lpn), PageSize::Large);
        tlb.fill(A1, laddr(lpn), PageSize::Large);
        tlb.fill(A0, baddr(lpn), PageSize::Base);
    }
    assert_eq!(tlb.occupancy(), 12);
    assert_eq!(tlb.flush_asid(A0), 8, "4 large + 4 base entries dropped");
    assert_eq!(tlb.occupancy(), 4);
    for lpn in 0..4 {
        assert_eq!(tlb.peek(A1, laddr(lpn)), TlbLookup::HitLarge);
    }
}

#[test]
fn paper_l1_flush_asid_is_selective() {
    flush_asid_is_selective(TlbConfig::paper_l1());
}

#[test]
fn paper_l2_flush_asid_is_selective() {
    flush_asid_is_selective(TlbConfig::paper_l2());
}

/// paper_l2's base array is 16-way set-associative (32 sets): pages that
/// share a set conflict after 16 fills while other sets are unaffected,
/// and the victim is the set's LRU entry.
#[test]
fn paper_l2_base_set_conflicts() {
    let config = TlbConfig::paper_l2();
    let sets = (config.base_entries / config.base_assoc) as u64; // 32
    let mut tlb = Tlb::new(config);
    // 16 pages, all hashing to set 0, plus one in another set.
    for i in 0..16 {
        assert_eq!(tlb.fill(A0, baddr(i * sets), PageSize::Base), None);
    }
    tlb.fill(A0, baddr(1), PageSize::Base); // set 1, unaffected below
                                            // The 17th same-set fill evicts that set's LRU (the first fill).
    let evicted = tlb.fill(A0, baddr(16 * sets), PageSize::Base);
    assert_eq!(evicted, Some((A0, 0)));
    assert_eq!(tlb.peek(A0, baddr(0)), TlbLookup::Miss);
    assert_eq!(tlb.peek(A0, baddr(1)), TlbLookup::HitBase, "other sets untouched");
    assert_eq!(tlb.peek(A0, baddr(16 * sets)), TlbLookup::HitBase);
}
