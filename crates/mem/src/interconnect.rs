//! The inter-GPU interconnect.
//!
//! In a multi-GPU fleet a warp access can resolve to a frame owned by
//! another device; the request (and any migration or replication traffic)
//! then crosses an inter-GPU link fabric — NVLink-class point-to-point
//! links rather than the on-chip crossbar. We model each directed link as
//! a [`ThroughputPort`]: a fixed per-hop traversal latency plus a flit
//! serialization interval, so many-to-one bursts queue at the congested
//! link exactly like partition camping queues at the crossbar.
//!
//! Two topologies are modeled. `FullyConnected` gives every ordered GPU
//! pair a dedicated link (one hop). `Ring` connects each GPU to its two
//! neighbours; a message takes the shorter direction (ties go clockwise)
//! and occupies every link on its path, store-and-forward.

use mosaic_sim_core::{Counter, Cycle, Histogram, ThroughputPort};

/// Bytes carried by one interconnect flit (one cache line).
pub const FLIT_BYTES: u64 = 128;

/// How the GPUs of a fleet are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// A dedicated directed link between every ordered pair of GPUs.
    #[default]
    FullyConnected,
    /// Each GPU links to its two neighbours; messages take the shorter
    /// direction around the ring (ties go clockwise).
    Ring,
}

impl Topology {
    /// Number of hops a message from `from` to `to` takes in a fleet of
    /// `gpus` devices (zero when local).
    pub fn hops(self, from: usize, to: usize, gpus: usize) -> u64 {
        if from == to {
            return 0;
        }
        match self {
            Topology::FullyConnected => 1,
            Topology::Ring => {
                let cw = (to + gpus - from) % gpus;
                let ccw = gpus - cw;
                cw.min(ccw) as u64
            }
        }
    }
}

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterconnectConfig {
    /// One-way traversal latency of a single link, in core cycles.
    pub link_latency: u64,
    /// Cycles between successive flit injections on one link (the
    /// bandwidth knob: 128 B every `cycles_per_flit` cycles).
    pub cycles_per_flit: u64,
    /// How the fleet is wired.
    pub topology: Topology,
}

impl InterconnectConfig {
    /// NVLink-class defaults: ~120-cycle hop latency and a quarter of
    /// local DRAM-bus bandwidth (one 128 B flit every 4 cycles).
    pub fn paper() -> Self {
        InterconnectConfig {
            link_latency: 120,
            cycles_per_flit: 4,
            topology: Topology::FullyConnected,
        }
    }
}

/// The link fabric of one fleet: per-directed-link injection ports plus
/// fixed per-hop latency.
///
/// # Examples
///
/// ```
/// use mosaic_mem::{Interconnect, InterconnectConfig};
/// use mosaic_sim_core::Cycle;
///
/// let mut icn = Interconnect::new(InterconnectConfig::paper(), 2);
/// let arrival = icn.traverse(Cycle::new(0), 0, 1);
/// assert_eq!(arrival, Cycle::new(120));
/// // Local "traversals" are free: no hop, no flit.
/// assert_eq!(icn.traverse(Cycle::new(7), 1, 1), Cycle::new(7));
/// ```
#[derive(Debug)]
pub struct Interconnect {
    config: InterconnectConfig,
    gpus: usize,
    /// Directed-link ports, indexed `src * gpus + dst`. Ring routes only
    /// ever use neighbour entries; the rest stay idle.
    ports: Vec<ThroughputPort>,
    flits: Counter,
    bytes: Counter,
    queueing: Histogram,
}

impl Interconnect {
    /// Creates an idle interconnect for a fleet of `gpus` devices.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(config: InterconnectConfig, gpus: usize) -> Self {
        assert!(gpus > 0, "a fleet needs at least one GPU");
        Interconnect {
            config,
            gpus,
            ports: (0..gpus * gpus)
                .map(|_| {
                    ThroughputPort::pipelined(
                        config.link_latency.max(1),
                        config.cycles_per_flit.max(1),
                    )
                })
                .collect(),
            flits: Counter::new(),
            bytes: Counter::new(),
            queueing: Histogram::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &InterconnectConfig {
        &self.config
    }

    /// Number of GPUs this fabric connects.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// The directed links of the path from `from` to `to`, as port
    /// indices in traversal order (empty when local).
    fn route(&self, from: usize, to: usize) -> Vec<usize> {
        let n = self.gpus;
        let (from, to) = (from % n, to % n);
        if from == to {
            return Vec::new();
        }
        match self.config.topology {
            Topology::FullyConnected => vec![from * n + to],
            Topology::Ring => {
                let cw = (to + n - from) % n;
                let ccw = n - cw;
                let mut links = Vec::with_capacity(cw.min(ccw));
                let mut at = from;
                for _ in 0..cw.min(ccw) {
                    let next = if cw <= ccw { (at + 1) % n } else { (at + n - 1) % n };
                    links.push(at * n + next);
                    at = next;
                }
                links
            }
        }
    }

    /// Sends one flit (a cache-line request) from GPU `from` to GPU `to`
    /// starting at `now`; returns the cycle it arrives. Local traffic
    /// (`from == to`) never touches a link and arrives immediately.
    pub fn traverse(&mut self, now: Cycle, from: usize, to: usize) -> Cycle {
        let mut at = now;
        for link in self.route(from, to) {
            self.flits.inc();
            self.bytes.add(FLIT_BYTES);
            let grant = self.ports[link].acquire(at);
            self.queueing.record(grant.start.since(at));
            at = grant.start + self.config.link_latency;
        }
        at
    }

    /// Moves `bytes` of page payload from GPU `from` to GPU `to` starting
    /// at `now` (migration or replication traffic); returns the cycle the
    /// last flit lands. The payload is injected flit by flit, so it
    /// occupies every link on the path for its full wire time,
    /// store-and-forward per hop.
    pub fn transfer(&mut self, now: Cycle, from: usize, to: usize, bytes: u64) -> Cycle {
        let flits = bytes.div_ceil(FLIT_BYTES).max(1);
        let mut at = now;
        for link in self.route(from, to) {
            let first = self.ports[link].acquire(at);
            self.queueing.record(first.start.since(at));
            let mut last = first.start + self.config.link_latency;
            for _ in 1..flits {
                let grant = self.ports[link].acquire(at);
                last = last.max(grant.start + self.config.link_latency);
            }
            self.flits.add(flits);
            self.bytes.add(flits * FLIT_BYTES);
            at = last;
        }
        at
    }

    /// Total flits injected across all links.
    pub fn flits(&self) -> u64 {
        self.flits.get()
    }

    /// Total bytes carried across all links.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Distribution of per-injection queueing delay in cycles.
    pub fn queueing(&self) -> &Histogram {
        &self.queueing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(topology: Topology) -> InterconnectConfig {
        InterconnectConfig { link_latency: 100, cycles_per_flit: 4, topology }
    }

    #[test]
    fn local_traffic_is_free() {
        let mut icn = Interconnect::new(cfg(Topology::FullyConnected), 4);
        assert_eq!(icn.traverse(Cycle::new(42), 2, 2), Cycle::new(42));
        assert_eq!(icn.transfer(Cycle::new(42), 2, 2, 1 << 21), Cycle::new(42));
        assert_eq!(icn.flits(), 0);
    }

    #[test]
    fn uncontended_hop_takes_link_latency() {
        let mut icn = Interconnect::new(cfg(Topology::FullyConnected), 2);
        assert_eq!(icn.traverse(Cycle::new(10), 0, 1), Cycle::new(110));
        assert_eq!(icn.flits(), 1);
        assert_eq!(icn.bytes(), FLIT_BYTES);
    }

    #[test]
    fn same_link_serializes_injection() {
        let mut icn = Interconnect::new(cfg(Topology::FullyConnected), 2);
        let a = icn.traverse(Cycle::new(0), 0, 1);
        let b = icn.traverse(Cycle::new(0), 0, 1);
        assert_eq!(a, Cycle::new(100));
        assert_eq!(b, Cycle::new(104), "second flit injects one interval later");
        // The reverse direction is a different link: no contention.
        assert_eq!(icn.traverse(Cycle::new(0), 1, 0), Cycle::new(100));
    }

    #[test]
    fn ring_takes_the_shorter_direction() {
        assert_eq!(Topology::Ring.hops(0, 1, 4), 1);
        assert_eq!(Topology::Ring.hops(0, 3, 4), 1, "wraps backwards");
        assert_eq!(Topology::Ring.hops(0, 2, 4), 2, "opposite corner is two hops");
        assert_eq!(Topology::FullyConnected.hops(0, 2, 4), 1);
        assert_eq!(Topology::Ring.hops(3, 3, 4), 0);
        let mut icn = Interconnect::new(cfg(Topology::Ring), 4);
        assert_eq!(
            icn.traverse(Cycle::new(0), 0, 2),
            Cycle::new(200),
            "two store-and-forward hops"
        );
    }

    #[test]
    fn bulk_transfer_pays_wire_time() {
        let mut icn = Interconnect::new(cfg(Topology::FullyConnected), 2);
        // 1024 B = 8 flits: first lands at 100, each later flit 4 cycles
        // apart, so the last lands at 100 + 7*4.
        assert_eq!(icn.transfer(Cycle::new(0), 0, 1, 1024), Cycle::new(128));
        assert_eq!(icn.flits(), 8);
        assert_eq!(icn.bytes(), 1024);
        // And the link stays occupied: a flit right behind it queues.
        let after = icn.traverse(Cycle::new(0), 0, 1);
        assert_eq!(after, Cycle::new(132));
    }

    #[test]
    fn queueing_histogram_records_waits() {
        let mut icn = Interconnect::new(cfg(Topology::FullyConnected), 2);
        icn.traverse(Cycle::new(0), 0, 1);
        icn.traverse(Cycle::new(0), 0, 1);
        assert_eq!(icn.queueing().max(), Some(4));
    }

    #[test]
    fn gpu_index_wraps() {
        let mut icn = Interconnect::new(cfg(Topology::Ring), 2);
        // GPU 5 wraps to index 1; no panic.
        let _ = icn.traverse(Cycle::new(0), 5, 0);
    }
}
