//! Set-associative caches with LRU replacement.
//!
//! Used for both the per-SM private L1 data cache (16 KB, 4-way, 1-cycle)
//! and each slice of the shared L2 (2 MB total across six partitions,
//! 16-way, 10-cycle) from Table 1. The cache is physically indexed and
//! tagged: requests arrive after address translation, which is exactly why
//! TLB misses sit on the critical path the paper measures.

use mosaic_sim_core::Ratio;

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes.
    pub line_size: u64,
    /// Associativity (ways).
    pub assoc: usize,
    /// Hit latency in core cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// The paper's private L1 data cache: 16 KB, 4-way, 128 B lines,
    /// 1-cycle latency.
    pub fn paper_l1() -> Self {
        CacheConfig { capacity: 16 * 1024, line_size: 128, assoc: 4, latency: 1 }
    }

    /// One slice of the paper's shared L2: 2 MB total over six partitions
    /// (≈341 KB per slice, rounded to 384 KB to keep power-of-two sets),
    /// 16-way, 128 B lines, 10-cycle latency.
    pub fn paper_l2_slice() -> Self {
        CacheConfig {
            capacity: 2 * 1024 * 1024 / 6 / 128 * 128,
            line_size: 128,
            assoc: 16,
            latency: 10,
        }
    }

    /// Number of lines in the cache.
    pub fn lines(&self) -> u64 {
        self.capacity / self.line_size
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.lines() / self.assoc as u64).max(1)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_used: u64,
    dirty: bool,
}

/// Upper bound on associativity supported by [`Cache::access_logged`]'s
/// inline set snapshot. Both shipped geometries (the 4-way L1 and the
/// 16-way L2 slice) fit; the bound keeps the journal record `Copy` and
/// allocation-free so reused journal vectors never touch the heap on
/// the speculation path.
const LOGGED_ASSOC_MAX: usize = 16;

/// Saved pre-state of one [`Cache::access_logged`] call, sufficient to
/// reverse it exactly: the touched set's lines and live count plus the
/// tick/stat scalars. An access mutates nothing outside its own set, so
/// snapshotting the set makes hit-refresh, free-way fill, and
/// LRU-replace all trivially reversible. Undo is only valid while no
/// other mutation of this cache intervenes — the speculative engine
/// rolls back every un-committed step before shared-path work runs.
#[derive(Debug, Clone, Copy)]
pub struct CacheAccessUndo {
    tick: u64,
    stats: Ratio,
    writebacks: u64,
    set: usize,
    len: u16,
    lines: [Line; LOGGED_ASSOC_MAX],
}

/// A set-associative, physically-indexed cache with LRU replacement.
///
/// This is a structural model: [`Cache::access`] reports hit/miss and
/// updates contents; the caller charges [`CacheConfig::latency`] on a hit
/// and forwards misses to the next level.
///
/// # Examples
///
/// ```
/// use mosaic_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::paper_l1());
/// assert!(!l1.access(0x1000, false)); // cold miss, line is filled
/// assert!(l1.access(0x1040, false));  // same 128 B line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All sets in one contiguous slab, `assoc` slots per set (no per-set
    /// heap indirection); `lens[s]` is the live-line count of set `s`.
    /// Live lines occupy the front of their set's slice, in the same
    /// order the per-set vectors held them.
    lines: Vec<Line>,
    lens: Vec<u16>,
    num_sets: u64,
    /// `log2(line_size)` when the line size is a power of two, so the
    /// per-access address split is a shift instead of a division. Both
    /// shipped geometries qualify; odd test geometries fall back.
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two (mask instead of
    /// modulo). The L2 slice has a non-power-of-two set count, so this
    /// stays a genuine fallback, not dead code.
    set_mask: Option<u64>,
    tick: u64,
    stats: Ratio,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size or associativity is zero, or the capacity
    /// is not a multiple of `line_size * assoc`.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_size > 0, "line size must be non-zero");
        assert!(config.assoc > 0, "associativity must be non-zero");
        let sets = config.sets();
        Cache {
            config,
            lines: vec![Line { tag: 0, last_used: 0, dirty: false }; sets as usize * config.assoc],
            lens: vec![0; sets as usize],
            num_sets: sets,
            line_shift: config
                .line_size
                .is_power_of_two()
                .then_some(config.line_size.trailing_zeros()),
            set_mask: sets.is_power_of_two().then_some(sets - 1),
            tick: 0,
            stats: Ratio::default(),
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit latency in core cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = match self.line_shift {
            Some(shift) => addr >> shift,
            None => addr / self.config.line_size,
        };
        let set = match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.num_sets) as usize,
        };
        (set, line)
    }

    /// Accesses the line containing `addr`; on a miss the line is filled
    /// (allocate-on-miss for both reads and writes). Returns `true` on hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.config.assoc;
        let (set_idx, tag) = self.split(addr);
        let base = set_idx * assoc;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.lines[base..base + len];
        // One pass finds the hit and the LRU victim together. Ticks are
        // unique within the cache, so strict `<` keeps the same
        // (first-minimum) victim the separate `min_by_key` pass chose.
        let mut lru_idx = 0;
        let mut lru_tick = u64::MAX;
        for (i, line) in set.iter_mut().enumerate() {
            if line.tag == tag {
                line.last_used = tick;
                line.dirty |= write;
                self.stats.record(true);
                return true;
            }
            if line.last_used < lru_tick {
                lru_tick = line.last_used;
                lru_idx = i;
            }
        }
        self.stats.record(false);
        if len < assoc {
            self.lines[base + len] = Line { tag, last_used: tick, dirty: write };
            self.lens[set_idx] += 1;
        } else {
            let victim = &mut self.lines[base + lru_idx];
            if victim.dirty {
                self.writebacks += 1;
            }
            *victim = Line { tag, last_used: tick, dirty: write };
        }
        false
    }

    /// [`Cache::access`] with an undo record appended to `undo`: the
    /// intra-run speculative engine accesses in place and rolls an
    /// aborted step back via [`Cache::undo_access`]. The access itself
    /// is performed by `access` directly, so the two paths cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if the cache is more than [`LOGGED_ASSOC_MAX`]-way
    /// associative (the record's inline set snapshot would not fit).
    pub fn access_logged(
        &mut self,
        addr: u64,
        write: bool,
        undo: &mut Vec<CacheAccessUndo>,
    ) -> bool {
        let assoc = self.config.assoc;
        assert!(
            assoc <= LOGGED_ASSOC_MAX,
            "access_logged supports at most {LOGGED_ASSOC_MAX} ways"
        );
        let (set_idx, _) = self.split(addr);
        let base = set_idx * assoc;
        let mut lines = [Line { tag: 0, last_used: 0, dirty: false }; LOGGED_ASSOC_MAX];
        lines[..assoc].copy_from_slice(&self.lines[base..base + assoc]);
        undo.push(CacheAccessUndo {
            tick: self.tick,
            stats: self.stats,
            writebacks: self.writebacks,
            set: set_idx,
            len: self.lens[set_idx],
            lines,
        });
        self.access(addr, write)
    }

    /// Reverses one [`Cache::access_logged`] call. Records must be
    /// undone in reverse logging order, with no intervening mutations —
    /// see [`CacheAccessUndo`].
    pub fn undo_access(&mut self, rec: &CacheAccessUndo) {
        let assoc = self.config.assoc;
        let base = rec.set * assoc;
        self.lines[base..base + assoc].copy_from_slice(&rec.lines[..assoc]);
        self.lens[rec.set] = rec.len;
        self.tick = rec.tick;
        self.stats = rec.stats;
        self.writebacks = rec.writebacks;
    }

    /// Probes without filling or updating recency.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.split(addr);
        let base = set_idx * self.config.assoc;
        self.lines[base..base + self.lens[set_idx] as usize].iter().any(|l| l.tag == tag)
    }

    /// Invalidates every line (e.g., at kernel boundaries). Dirty lines
    /// count as writebacks.
    pub fn flush(&mut self) {
        let assoc = self.config.assoc;
        for (set_idx, len) in self.lens.iter_mut().enumerate() {
            let base = set_idx * assoc;
            let live = &self.lines[base..base + *len as usize];
            self.writebacks += live.iter().filter(|l| l.dirty).count() as u64;
            *len = 0;
        }
    }

    /// Hit-rate statistics.
    pub fn hit_rate(&self) -> Ratio {
        self.stats
    }

    /// Number of dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B, 2-way: 2 sets.
        Cache::new(CacheConfig { capacity: 256, line_size: 64, assoc: 2, latency: 1 })
    }

    #[test]
    fn same_line_hits() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(63, false));
        assert!(!c.access(64, false), "next line misses");
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 (line numbers 0,2,4) all map to set 0.
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // line 0 most recent
        c.access(256, false); // evicts line 2 (addr 128)
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(128, false);
        c.access(256, false); // evicts LRU (addr 0, dirty)
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn flush_empties_and_writes_back() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.writebacks(), 1);
        assert!(!c.contains(0));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.hit_rate().hits(), 2);
        assert_eq!(c.hit_rate().misses(), 1);
    }

    #[test]
    fn paper_configs_are_sane() {
        let l1 = Cache::new(CacheConfig::paper_l1());
        assert_eq!(l1.config().lines(), 128);
        assert_eq!(l1.config().sets(), 32);
        let l2 = Cache::new(CacheConfig::paper_l2_slice());
        assert!(l2.config().lines() > 2000);
        assert_eq!(l2.config().assoc, 16);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn zero_line_size_rejected() {
        let _ = Cache::new(CacheConfig { capacity: 256, line_size: 0, assoc: 2, latency: 1 });
    }

    /// Round-trip contract of the speculation journal: a chain of logged
    /// accesses behaves exactly like plain accesses, and undoing it in
    /// reverse restores the cache to its pre-chain state (compared via
    /// `Debug`, covering lines, lens, tick, stats, and writebacks).
    #[test]
    fn logged_access_matches_plain_and_undoes_exactly() {
        use mosaic_sim_core::SimRng;
        let mut rng = SimRng::from_seed(0xCAC4E);
        let mut cache = tiny();
        for _ in 0..300 {
            // Churn with plain accesses (fills, evictions, dirty lines).
            for _ in 0..rng.below(4) {
                cache.access(rng.below(16) * 64, rng.chance(0.3));
            }
            let snapshot = format!("{cache:?}");
            let mut twin = cache.clone();
            let mut undo = Vec::new();
            for _ in 0..rng.below(4) + 1 {
                let addr = rng.below(16) * 64;
                let write = rng.chance(0.3);
                assert_eq!(
                    cache.access_logged(addr, write, &mut undo),
                    twin.access(addr, write),
                    "logged access outcome must match the plain path"
                );
            }
            assert_eq!(format!("{cache:?}"), format!("{twin:?}"), "forward states must match");
            for rec in undo.iter().rev() {
                cache.undo_access(rec);
            }
            assert_eq!(format!("{cache:?}"), snapshot, "undo must restore the pre-chain state");
            cache = twin;
        }
    }

    #[test]
    fn split_fast_paths_match_division() {
        // The L2 slice geometry has a non-power-of-two set count, the L1 a
        // power-of-two one; both must index identically to plain div/mod.
        for config in [CacheConfig::paper_l1(), CacheConfig::paper_l2_slice()] {
            let c = Cache::new(config);
            for addr in (0..4096u64).map(|i| i * 7919) {
                let (set, line) = c.split(addr);
                assert_eq!(line, addr / config.line_size);
                assert_eq!(set as u64, line % c.num_sets);
            }
        }
    }
}
