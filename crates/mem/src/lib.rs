//! GPU memory hierarchy for the Mosaic reproduction.
//!
//! Models the memory system of Table 1 in the paper:
//!
//! * [`cache`] — set-associative caches with LRU replacement: the 16 KB
//!   4-way private L1 data cache per SM and the 2 MB 16-way shared L2,
//!   sliced across six memory partitions with banked ports.
//! * [`dram`] — GDDR5-like DRAM: six channels, eight banks per rank,
//!   row-buffer state with open-row policy, FR-FCFS-style service through
//!   per-bank occupancy, and the in-DRAM bulk-copy fast path
//!   (RowClone/LISA) used by Mosaic's CAC-BC variant.
//! * [`xbar`] — the SM-to-memory-partition crossbar with per-partition
//!   injection ports.
//! * [`interconnect`] — the inter-GPU link fabric for multi-GPU fleets:
//!   per-directed-link injection ports, fully-connected or ring topology,
//!   with bulk page-migration transfers.
//!
//! Like the rest of the substrate, structures here are *timing models*: a
//! request presents an address and an arrival cycle, and the component
//! returns the completion cycle, accounting for port, bank, and bus
//! contention through `mosaic_sim_core`'s occupancy primitives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dram;
pub mod interconnect;
pub mod xbar;

pub use cache::{Cache, CacheAccessUndo, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use interconnect::{Interconnect, InterconnectConfig, Topology, FLIT_BYTES};
pub use xbar::{Crossbar, CrossbarConfig};
