//! The SM-to-memory-partition crossbar.
//!
//! Each SM reaches the six shared memory partitions (L2 slice + memory
//! controller) through an interconnect, typically a crossbar (Section 2.1).
//! We model a fixed traversal latency plus a per-partition injection port
//! that serializes line-sized flits, which captures the first-order effect:
//! partition camping and many-to-one bursts queue at the destination.

use mosaic_sim_core::{Counter, Cycle, Histogram, ThroughputPort};

/// Crossbar parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarConfig {
    /// Number of destination memory partitions.
    pub partitions: usize,
    /// One-way traversal latency in core cycles.
    pub latency: u64,
    /// Cycles between successive flit injections at one partition.
    pub cycles_per_flit: u64,
}

impl CrossbarConfig {
    /// Six partitions, 4-cycle traversal, one 128 B flit per cycle per
    /// partition — a generous contemporary crossbar.
    pub fn paper() -> Self {
        CrossbarConfig { partitions: 6, latency: 4, cycles_per_flit: 1 }
    }
}

/// The crossbar: per-partition injection ports plus fixed latency.
///
/// # Examples
///
/// ```
/// use mosaic_mem::{Crossbar, CrossbarConfig};
/// use mosaic_sim_core::Cycle;
///
/// let mut xbar = Crossbar::new(CrossbarConfig::paper());
/// let arrival = xbar.traverse(Cycle::new(0), 0);
/// assert_eq!(arrival, Cycle::new(4));
/// ```
#[derive(Debug)]
pub struct Crossbar {
    config: CrossbarConfig,
    ports: Vec<ThroughputPort>,
    flits: Counter,
    queueing: Histogram,
}

impl Crossbar {
    /// Creates an idle crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(config: CrossbarConfig) -> Self {
        assert!(config.partitions > 0, "need at least one partition");
        Crossbar {
            config,
            ports: (0..config.partitions)
                .map(|_| {
                    ThroughputPort::pipelined(config.latency.max(1), config.cycles_per_flit.max(1))
                })
                .collect(),
            flits: Counter::new(),
            queueing: Histogram::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Sends one flit to `partition` starting at `now`; returns the cycle
    /// it arrives at the partition.
    pub fn traverse(&mut self, now: Cycle, partition: usize) -> Cycle {
        self.flits.inc();
        let port = &mut self.ports[partition % self.config.partitions];
        let grant = port.acquire(now);
        self.queueing.record(grant.start.since(now));
        grant.start + self.config.latency
    }

    /// Total flits transferred.
    pub fn flits(&self) -> u64 {
        self.flits.get()
    }

    /// Distribution of per-flit queueing delay in cycles.
    pub fn queueing(&self) -> &Histogram {
        &self.queueing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_flit_takes_latency() {
        let mut x = Crossbar::new(CrossbarConfig::paper());
        assert_eq!(x.traverse(Cycle::new(10), 3), Cycle::new(14));
        assert_eq!(x.flits(), 1);
    }

    #[test]
    fn same_partition_serializes_injection() {
        let mut x = Crossbar::new(CrossbarConfig { partitions: 2, latency: 4, cycles_per_flit: 2 });
        let a = x.traverse(Cycle::new(0), 0);
        let b = x.traverse(Cycle::new(0), 0);
        assert_eq!(a, Cycle::new(4));
        assert_eq!(b, Cycle::new(6), "second flit injects 2 cycles later");
    }

    #[test]
    fn different_partitions_are_parallel() {
        let mut x = Crossbar::new(CrossbarConfig::paper());
        let a = x.traverse(Cycle::new(0), 0);
        let b = x.traverse(Cycle::new(0), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn queueing_histogram_records_waits() {
        let mut x = Crossbar::new(CrossbarConfig { partitions: 1, latency: 1, cycles_per_flit: 5 });
        x.traverse(Cycle::new(0), 0);
        x.traverse(Cycle::new(0), 0);
        assert_eq!(x.queueing().max(), Some(5));
    }

    #[test]
    fn partition_index_wraps() {
        let mut x = Crossbar::new(CrossbarConfig { partitions: 2, latency: 1, cycles_per_flit: 1 });
        // Partition 5 wraps to index 1; no panic.
        let _ = x.traverse(Cycle::new(0), 5);
    }
}
