//! GDDR5-like DRAM channel model.
//!
//! Table 1: 3 GB GDDR5 at 1674 MHz, six channels, eight banks per rank,
//! FR-FCFS scheduling, burst length 8. We model what drives the paper's
//! results: per-bank row-buffer state (a row hit is much cheaper than a row
//! conflict), per-bank service occupancy, and a per-channel data bus that
//! serializes bursts. The address is interleaved across channels at line
//! granularity and across banks at row granularity, the common GPU layout.
//!
//! Two copy paths for CAC's compaction (Section 4.4):
//! * the **narrow path**, copying a 4 KB page 64 bits at a time over the
//!   channel (512 bus transactions), and
//! * the **bulk path** (RowClone/LISA), an in-DRAM copy of the page in
//!   ~80 ns that never occupies the channel data bus.

use mosaic_sim_core::{ClockDomain, Counter, Cycle, Nanos, OccupancyPool, Ratio, ThroughputPort};

/// DRAM geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels (each with its own data bus).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer (page) size per bank in bytes.
    pub row_size: u64,
    /// Line interleaving granularity across channels, in bytes.
    pub line_size: u64,
    /// Latency of a row-buffer hit, in nanoseconds (CAS).
    pub row_hit: Nanos,
    /// Latency of a row-buffer conflict (precharge + activate + CAS), in
    /// nanoseconds.
    pub row_conflict: Nanos,
    /// Data-bus occupancy of one burst, in nanoseconds.
    pub burst_time: Nanos,
    /// In-DRAM bulk page copy latency (RowClone/LISA), in nanoseconds.
    pub bulk_copy: Nanos,
    /// The core clock used to express completions in shader cycles.
    pub core_clock_mhz: f64,
}

impl DramConfig {
    /// The paper's configuration: 6 channels, two ranks of 8 banks each
    /// (16 bank state machines per channel), 2 KB rows, GDDR5 timing
    /// expressed in nanoseconds, 1020 MHz core clock.
    pub fn paper() -> Self {
        DramConfig {
            channels: 6,
            banks_per_channel: 16,
            row_size: 2048,
            line_size: 128,
            // GDDR5-class timings: ~15 ns CAS, ~45 ns PRE+ACT+CAS.
            row_hit: Nanos(15.0),
            row_conflict: Nanos(45.0),
            // Burst of 8 on a 1674 MHz DDR interface moving 32 B/burst-pair:
            // ~2.4 ns of bus time per 128 B line (4 bursts).
            burst_time: Nanos(2.4),
            bulk_copy: Nanos(80.0),
            core_clock_mhz: 1020.0,
        }
    }
}

/// How many recently-open rows count as row-buffer hits: a first-order
/// stand-in for FR-FCFS, which reorders the bank queue to batch requests
/// to the same row (Table 1's scheduler). Without it, interleaved warp
/// streams would destroy all row locality that the real scheduler
/// recovers.
const FRFCFS_WINDOW: usize = 4;

#[derive(Debug, Clone)]
struct Bank {
    /// Most-recently-open rows, most recent last.
    open_rows: Vec<u64>,
    service: OccupancyPool,
}

impl Bank {
    /// Records an access to `row`; returns whether FR-FCFS would have
    /// serviced it as a row hit.
    fn access_row(&mut self, row: u64) -> bool {
        if let Some(i) = self.open_rows.iter().position(|&r| r == row) {
            self.open_rows.remove(i);
            self.open_rows.push(row);
            true
        } else {
            if self.open_rows.len() >= FRFCFS_WINDOW {
                self.open_rows.remove(0);
            }
            self.open_rows.push(row);
            false
        }
    }
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    bus: ThroughputPort,
    /// Background copy engine: CAC's narrow page copies serialize here,
    /// in the idle bus slots the memory controller leaves them (demand
    /// traffic is prioritized, so copies do not delay reads — but
    /// anything waiting on the *copied data*, like an allocation that
    /// triggered compaction, waits for the engine).
    copy_engine: ThroughputPort,
}

/// The DRAM subsystem: all channels and banks plus copy engines.
///
/// # Examples
///
/// ```
/// use mosaic_mem::{Dram, DramConfig};
/// use mosaic_sim_core::Cycle;
///
/// let mut dram = Dram::new(DramConfig::paper());
/// let first = dram.access(Cycle::new(0), 0x1_0000);
/// // A second access to the same row is a row-buffer hit: cheaper.
/// let second = dram.access(first, 0x1_0040) - first;
/// assert!(second < first.as_u64());
/// ```
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    clock: ClockDomain,
    /// `clock.cycles_for(config.burst_time).max(1)`, precomputed: the
    /// per-access and per-copy-beat paths need it on every call.
    burst_cycles: u64,
    row_hits: Ratio,
    accesses: Counter,
    bulk_copies: Counter,
    narrow_copies: Counter,
}

impl Dram {
    /// Creates an idle DRAM subsystem.
    ///
    /// # Panics
    ///
    /// Panics if the channel or bank count is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        assert!(config.banks_per_channel > 0, "need at least one bank");
        let clock = ClockDomain::from_mhz(config.core_clock_mhz);
        let burst_cycles = clock.cycles_for(config.burst_time).max(1);
        let channels = (0..config.channels)
            .map(|_| Channel {
                banks: (0..config.banks_per_channel)
                    .map(|_| Bank { open_rows: Vec::new(), service: OccupancyPool::new(1) })
                    .collect(),
                bus: ThroughputPort::serialized(burst_cycles),
                copy_engine: ThroughputPort::serialized(1),
            })
            .collect();
        Dram {
            config,
            channels,
            clock,
            burst_cycles,
            row_hits: Ratio::default(),
            accesses: Counter::new(),
            bulk_copies: Counter::new(),
            narrow_copies: Counter::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Channel index serving `addr`.
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.config.line_size) % self.config.channels as u64) as usize
    }

    fn locate(&self, addr: u64) -> (usize, usize, u64) {
        let channel = self.channel_of(addr);
        // Strip channel interleaving, then split into (row, bank).
        let local = addr / (self.config.line_size * self.config.channels as u64);
        let row_global = local / (self.config.row_size / self.config.line_size).max(1);
        let bank = (row_global % self.config.banks_per_channel as u64) as usize;
        let row = row_global / self.config.banks_per_channel as u64;
        (channel, bank, row)
    }

    /// Services one line-sized access beginning no earlier than `now`;
    /// returns the completion cycle. Row-buffer state, bank occupancy, and
    /// channel bus occupancy are all charged.
    pub fn access(&mut self, now: Cycle, addr: u64) -> Cycle {
        self.access_timed(now, addr).0
    }

    /// Like [`Dram::access`], but also returns the pure *service* portion
    /// of the latency — the row access plus bus burst the request would
    /// cost on an idle channel — and whether it hit the open row.
    /// Everything before `done - service` is bank/bus queueing, which is
    /// how the stall attribution splits DRAM time into queue vs. service.
    pub fn access_timed(&mut self, now: Cycle, addr: u64) -> (Cycle, u64, bool) {
        self.accesses.inc();
        let (ch, bank_idx, row) = self.locate(addr);
        let hit = self.channels[ch].banks[bank_idx].access_row(row);
        self.row_hits.record(hit);
        let service_ns = if hit { self.config.row_hit } else { self.config.row_conflict };
        let service = self.clock.cycles_for(service_ns).max(1);
        let bank_done = {
            let bank = &mut self.channels[ch].banks[bank_idx];
            bank.service.acquire(now, service).done
        };
        // Data returns over the channel bus after the bank produces it.
        let done = self.channels[ch].bus.acquire(bank_done).done;
        let burst = self.burst_cycles;
        mosaic_telemetry::emit(|| mosaic_telemetry::Event::DramAccess {
            cycle: now.as_u64(),
            done: done.as_u64(),
            service: service + burst,
            row_hit: hit,
        });
        (done, service + burst, hit)
    }

    /// Copies one 4 KB page within channel `ch` over the narrow (64-bit)
    /// path: 512 serialized bus transactions (Section 4.4's default
    /// migration cost). Copies run on the channel's background copy
    /// engine in idle bus slots; demand traffic is not delayed, but the
    /// returned completion cycle gates whoever needs the migrated frame.
    pub fn narrow_page_copy(&mut self, now: Cycle, ch: usize) -> Cycle {
        self.narrow_copies.inc();
        let per_beat = self.burst_cycles;
        // 4096 B / 8 B per beat = 512 beats of copy-engine occupancy.
        let beats = 4096 / 8;
        let ch = ch % self.config.channels;
        let done = self.channels[ch].copy_engine.acquire_for(now, per_beat * beats).done;
        mosaic_telemetry::emit(|| mosaic_telemetry::Event::PageCopy {
            cycle: now.as_u64(),
            done: done.as_u64(),
            bulk: false,
        });
        done
    }

    /// Copies one 4 KB page within channel `ch` using the in-DRAM bulk
    /// path (RowClone/LISA): occupies the bank array, not the data bus.
    /// Returns the completion cycle.
    pub fn bulk_page_copy(&mut self, now: Cycle, ch: usize) -> Cycle {
        self.bulk_copies.inc();
        let cycles = self.clock.cycles_for(self.config.bulk_copy).max(1);
        let ch = ch % self.config.channels;
        // Charge an arbitrary bank pair (we model the array occupancy on
        // bank 0 of the channel; the data bus stays free, which is the
        // mechanism's whole point).
        let done = self.channels[ch].banks[0].service.acquire(now, cycles).done;
        mosaic_telemetry::emit(|| mosaic_telemetry::Event::PageCopy {
            cycle: now.as_u64(),
            done: done.as_u64(),
            bulk: true,
        });
        done
    }

    /// Nominal latency of one uncontended line access that misses the row
    /// buffer (used by the simulator's lookahead isolation: accesses far
    /// in the simulated future are charged nominal latency instead of
    /// perturbing port state out of order).
    pub fn uncontended_latency(&self) -> u64 {
        self.clock.cycles_for(self.config.row_conflict).max(1) + self.burst_cycles
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> Ratio {
        self.row_hits
    }

    /// Number of line accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Number of bulk (in-DRAM) page copies performed.
    pub fn bulk_copies(&self) -> u64 {
        self.bulk_copies.get()
    }

    /// Number of narrow (over-the-bus) page copies performed.
    pub fn narrow_copies(&self) -> u64 {
        self.narrow_copies.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper())
    }

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let mut d = dram();
        let t1 = d.access(Cycle::new(0), 0);
        let cold = t1.as_u64();
        // Same row, arriving after the first completes.
        let t2 = d.access(t1, 64);
        let hit = t2 - t1;
        assert!(hit < cold, "row hit ({hit}) should beat row conflict ({cold})");
        assert_eq!(d.row_hit_rate().hits(), 1);
        assert_eq!(d.row_hit_rate().misses(), 1);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let mut d = dram();
        let cfg = *d.config();
        // Two addresses `banks * row_size * channels` apart share a bank
        // but use different rows.
        let stride = cfg.row_size * cfg.channels as u64 * cfg.banks_per_channel as u64;
        d.access(Cycle::new(0), 0);
        let far = d.access(Cycle::new(100_000), stride);
        let _ = far;
        assert_eq!(d.row_hit_rate().hits(), 0);
    }

    #[test]
    fn channels_interleave_by_line() {
        let d = dram();
        let line = d.config().line_size;
        let chans: Vec<_> = (0..6).map(|i| d.channel_of(i * line)).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(d.channel_of(6 * line), 0);
    }

    #[test]
    fn bank_contention_serializes() {
        let mut d = dram();
        // Two simultaneous accesses to the same bank and row: second waits.
        let a = d.access(Cycle::new(0), 0);
        let b = d.access(Cycle::new(0), 64);
        assert!(b > a);
    }

    #[test]
    fn parallel_channels_overlap() {
        let mut d = dram();
        let line = d.config().line_size;
        let a = d.access(Cycle::new(0), 0);
        let b = d.access(Cycle::new(0), line); // different channel
                                               // Both are cold conflicts; with independent channels they finish
                                               // at the same time.
        assert_eq!(a, b);
    }

    #[test]
    fn access_timed_splits_queue_from_service() {
        let mut d = dram();
        let (done, service, hit) = d.access_timed(Cycle::new(0), 0);
        assert!(!hit);
        assert_eq!(done.as_u64(), service, "idle DRAM has no queueing");
        assert_eq!(service, d.uncontended_latency(), "cold service matches the nominal latency");
        // A simultaneous same-bank access waits in the bank queue first.
        let (done2, service2, hit2) = d.access_timed(Cycle::new(0), 64);
        assert!(hit2, "same row under FR-FCFS");
        assert!(done2.as_u64() - service2 > 0, "queued behind the first access");
        assert!(done2 > done);
    }

    #[test]
    fn narrow_copy_takes_longer_than_bulk() {
        let mut d = dram();
        let narrow = d.narrow_page_copy(Cycle::new(0), 0);
        let mut d2 = dram();
        let bulk = d2.bulk_page_copy(Cycle::new(0), 0);
        assert!(narrow.as_u64() > bulk.as_u64() * 5, "narrow {narrow} vs bulk {bulk}");
        assert_eq!(d.narrow_copies(), 1);
        assert_eq!(d2.bulk_copies(), 1);
    }

    #[test]
    fn narrow_copies_do_not_delay_demand_traffic() {
        let mut d = dram();
        let copy_done = d.narrow_page_copy(Cycle::new(0), 0);
        // A demand access on the same channel proceeds at normal latency;
        // only consumers of the migrated data wait for `copy_done`.
        let line = d.config().line_size;
        let t = d.access(Cycle::new(0), line * 6 * 100);
        assert!(t.as_u64() * 4 < copy_done.as_u64(), "demand ({t}) vs copy ({copy_done})");
        // Back-to-back copies serialize on the engine.
        let second = d.narrow_page_copy(Cycle::new(0), 0);
        assert!(second > copy_done);
    }

    #[test]
    fn bulk_copy_leaves_bus_free() {
        let mut d = dram();
        let copy_done = d.bulk_page_copy(Cycle::new(0), 0);
        // A line access on the same channel is not delayed by the bus
        // (only possibly by bank 0, but this address maps elsewhere).
        let line = d.config().line_size * d.config().channels as u64;
        let t = d.access(Cycle::new(0), line * 17);
        assert!(t < copy_done || t.as_u64() < 100, "bus stays available during bulk copy");
    }
}
