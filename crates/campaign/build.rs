//! Computes the workspace *code digest* baked into `mosaic-campaign`.
//!
//! The content-addressed run cache keys every entry on, among other
//! things, a digest of the workspace's Rust sources plus `Cargo.lock`.
//! Any source change — a simulator fix, a new stall bucket, a dependency
//! bump — therefore changes every cache key, so entries computed by an
//! older build can never be served to a newer one. Over-invalidation
//! (hashing sources that cannot affect simulated output, e.g. tests) is
//! deliberate: a stale hit corrupts golden output, a spurious miss only
//! costs a re-run.
//!
//! The digest is FNV-1a (128-bit) over `(relative path, file bytes)`
//! pairs in sorted path order, so it is independent of directory walk
//! order and of the absolute checkout location.

use std::path::{Path, PathBuf};

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

fn fnv1a(hash: &mut u128, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u128::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Collects every `.rs` file under `dir`, recursively, skipping hidden
/// entries and anything named `target`.
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest_dir = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("set by cargo"));
    let workspace = manifest_dir
        .parent()
        .and_then(Path::parent)
        .expect("crates/campaign sits two levels below the workspace root")
        .to_path_buf();

    let mut files = Vec::new();
    collect_sources(&workspace.join("crates"), &mut files);
    collect_sources(&workspace.join("src"), &mut files);
    let lock = workspace.join("Cargo.lock");
    if lock.is_file() {
        files.push(lock);
    }
    // Sort by workspace-relative path so the digest is stable across walk
    // orders and checkout locations.
    let mut keyed: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(&workspace).unwrap_or(&p).to_string_lossy().replace('\\', "/");
            (rel, p)
        })
        .collect();
    keyed.sort();

    let mut hash = FNV_OFFSET;
    for (rel, path) in &keyed {
        let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("reading {rel}: {e}"));
        fnv1a(&mut hash, rel.as_bytes());
        fnv1a(&mut hash, &[0]);
        fnv1a(&mut hash, &bytes);
        fnv1a(&mut hash, &[0xff]);
    }

    println!("cargo:rustc-env=MOSAIC_CODE_DIGEST={hash:032x}");
    // Directory paths are tracked recursively by cargo; any source edit
    // anywhere in the workspace re-runs this script and moves the digest.
    println!("cargo:rerun-if-changed={}", workspace.join("crates").display());
    println!("cargo:rerun-if-changed={}", workspace.join("src").display());
    println!("cargo:rerun-if-changed={}", workspace.join("Cargo.lock").display());
}
