//! Store durability and corruption tolerance: entries survive process
//! boundaries (simulated by reopening the store), and any damaged or
//! stale on-disk state degrades to a cache miss — never an error, never
//! a wrong result.

use mosaic_campaign::{Digest, Store};
use mosaic_core::ManagerStats;
use mosaic_gpusim::{AppResult, ManagerKind, RunConfig, RunResult, SystemStats};
use mosaic_telemetry::{StallBreakdown, StallBucket};
use mosaic_workloads::Workload;
use std::path::PathBuf;

/// A fresh store directory per test (tests run concurrently).
fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mosaic-store-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic result — the store round-trips values; it does not care
/// whether they came from a real simulation.
fn result(cycles: u64) -> RunResult {
    let mut stall = StallBreakdown::default();
    stall.add(StallBucket::TlbWalk, cycles / 2);
    RunResult {
        workload: "MM".to_string(),
        manager: "GPU-MMU".to_string(),
        apps: vec![AppResult {
            name: "MM".to_string(),
            asid: 0,
            instructions: 10 * cycles,
            cycles,
            ipc: 10.0 / 3.0,
            stall_cycles: cycles / 2,
            stall,
        }],
        stats: SystemStats {
            l1_tlb_hits: 9,
            l1_tlb_total: 10,
            walk_latency_mean: 123.456,
            manager: ManagerStats { far_faults: 7, ..ManagerStats::default() },
            ..SystemStats::default()
        },
        total_cycles: cycles,
    }
}

fn job() -> (Workload, RunConfig) {
    (Workload::from_names(&["MM"]), RunConfig::new(ManagerKind::GpuMmu4K))
}

#[test]
fn entries_survive_reopening() {
    let dir = tmpdir("reopen");
    let (w, cfg) = job();
    let r = result(1000);
    let key = {
        let store = Store::open(&dir).unwrap();
        let key = store.run_key(&w, &cfg);
        assert!(store.lookup(key).is_none());
        store.insert(key, &r, 77);
        let st = store.stats();
        assert_eq!((st.hits, st.misses, st.stores, st.failures), (0, 1, 1, 0));
        key
    };
    // A different process (same code digest) sees the entry.
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.run_key(&w, &cfg), key, "keys are stable across store instances");
    let hit = store.lookup(key).expect("persisted entry");
    assert_eq!(hit.result, r);
    assert_eq!(hit.wall_ms, 77);
    let st = store.stats();
    assert_eq!((st.hits, st.misses, st.saved_ms), (1, 0, 77));
    let index = store.index_entries();
    assert_eq!(index.len(), 1);
    assert_eq!(index[0].0, key);
    assert_eq!(index[0].3, "MM");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_degrade_to_misses_and_heal_on_reinsert() {
    let dir = tmpdir("corrupt");
    let store = Store::open(&dir).unwrap();
    let (w, cfg) = job();
    let key = store.run_key(&w, &cfg);
    let r = result(2000);
    store.insert(key, &r, 5);
    let entry_path = dir.join("objects").join(format!("{key}.entry"));

    // Truncation (a crash mid-write of a non-atomic copy, disk-full...).
    let full = std::fs::read_to_string(&entry_path).unwrap();
    // (`len - 1` would only shave the final newline, which still parses.)
    for cut in [0, 1, full.len() / 3, full.len() - 2] {
        std::fs::write(&entry_path, &full[..cut]).unwrap();
        assert!(store.lookup(key).is_none(), "truncated at {cut} must miss");
    }
    // Bit-rot in a value.
    std::fs::write(&entry_path, full.replace("total_cycles=2000", "total_cycles=garbage")).unwrap();
    assert!(store.lookup(key).is_none());
    // An entry whose self-recorded key disagrees with its filename
    // (e.g. a file copied between stores by hand).
    let other = store.run_key(&Workload::from_names(&["GUPS"]), &cfg);
    std::fs::write(&entry_path, full.replace(&key.to_string(), &other.to_string())).unwrap();
    assert!(store.lookup(key).is_none());

    // Re-inserting over the damage restores service.
    store.insert(key, &r, 5);
    assert_eq!(store.lookup(key).expect("healed").result, r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mangled_index_lines_are_skipped_without_affecting_lookups() {
    let dir = tmpdir("index");
    let store = Store::open(&dir).unwrap();
    let (w, cfg) = job();
    let key = store.run_key(&w, &cfg);
    store.insert(key, &result(3000), 9);

    // Append garbage: truncated line, wrong column count, bad hex.
    let index_path = dir.join("index.tsv");
    let mut index = std::fs::read_to_string(&index_path).unwrap();
    index.push_str("deadbeef\n");
    index.push_str("nothex\tnothex\tNaN\tw\tm\n");
    index.push_str(&"z".repeat(40));
    std::fs::write(&index_path, &index).unwrap();
    assert_eq!(store.index_entries().len(), 1, "only the valid line survives");
    assert!(store.lookup(key).is_some(), "object lookups never touch the index");

    // Even a wholly missing index only empties the advisory listing.
    std::fs::remove_file(&index_path).unwrap();
    assert!(store.index_entries().is_empty());
    assert!(store.lookup(key).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_code_digest_invalidates_without_deleting() {
    let dir = tmpdir("stale");
    let (w, cfg) = job();
    let old = Store::open_with_code_digest(&dir, Digest(0x01d)).unwrap();
    let old_key = old.run_key(&w, &cfg);
    old.insert(old_key, &result(4000), 3);

    // "Recompiled" binary: same directory, different code digest.
    let new = Store::open_with_code_digest(&dir, Digest(0x7e3)).unwrap();
    let new_key = new.run_key(&w, &cfg);
    assert_ne!(old_key, new_key, "code digest participates in the key");
    assert!(new.lookup(new_key).is_none(), "stale entries can never serve a newer build");
    // The old build's entry is untouched — roll back the code and it hits.
    let old_again = Store::open_with_code_digest(&dir, Digest(0x01d)).unwrap();
    assert!(old_again.lookup(old_key).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reinsert_overwrites_atomically_and_failures_are_nonfatal() {
    let dir = tmpdir("overwrite");
    let store = Store::open(&dir).unwrap();
    let (w, cfg) = job();
    let key = store.run_key(&w, &cfg);
    store.insert(key, &result(1), 1);
    store.insert(key, &result(2), 2);
    assert_eq!(store.lookup(key).unwrap().result.total_cycles, 2, "last insert wins");
    // No temp files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(dir.join("objects"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files must not survive an insert");

    // Wreck the objects directory: inserts report failure via stats but
    // do not panic, and lookups simply miss.
    std::fs::remove_dir_all(dir.join("objects")).unwrap();
    std::fs::write(dir.join("objects"), b"not a directory").unwrap();
    store.insert(key, &result(3), 3);
    assert_eq!(store.stats().failures, 1);
    assert!(store.lookup(key).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
