//! The cache-key contract: the run key must be *complete* (every input
//! that can change simulated output moves it) and *canonical* (nothing
//! else moves it).
//!
//! Completeness is what protects golden output — an output-affecting
//! knob missing from the key would let two different runs share one
//! entry, serving wrong results. Canonicity is what makes the cache
//! useful — host-side execution knobs (`--jobs`, `--sim-threads`,
//! `audit_every`) must not fork the key space, or re-runs under
//! different parallelism would never hit.

use mosaic_campaign::digest::{run_key, Digest};
use mosaic_core::cac::CacConfig;
use mosaic_core::migrating::MigratingConfig;
use mosaic_gpusim::{DemandPagingMode, ManagerKind, PlacementPolicy, RunConfig, Topology};
use mosaic_workloads::Workload;

fn base() -> (Workload, RunConfig) {
    (Workload::from_names(&["MM"]), RunConfig::new(ManagerKind::GpuMmu4K))
}

const CODE: Digest = Digest(0xfeed);

#[test]
fn key_is_a_pure_function_of_its_inputs() {
    let (w, cfg) = base();
    assert_eq!(run_key(&w, &cfg, CODE), run_key(&w, &cfg, CODE));
    let (w2, cfg2) = base();
    assert_eq!(run_key(&w, &cfg, CODE), run_key(&w2, &cfg2, CODE));
}

#[test]
fn output_neutral_knobs_do_not_move_the_key() {
    let (w, cfg) = base();
    let k = run_key(&w, &cfg, CODE);
    // Runtime invariant audits are side-effect free: an audited run and
    // an unaudited run of the same config are bit-identical, so the
    // audit cadence must not fork the key space.
    for audited in [cfg.audited(0), cfg.audited(1), cfg.audited(1_000_000)] {
        assert_eq!(run_key(&w, &audited, CODE), k, "audit_every must be key-neutral");
    }
    // `--jobs` and `--sim-threads` never reach RunConfig at all (they
    // are process-global executor settings with byte-identical output at
    // any value), so the key cannot depend on them by construction; the
    // sweep-level determinism tier pins that output property.
}

/// Every output-affecting `RunConfig` field (and the workload, and the
/// code digest) must move the key, and every mutation must land on a
/// distinct key.
#[test]
fn every_output_affecting_field_moves_the_key() {
    let (w, cfg) = base();
    let mut keys = vec![("base", run_key(&w, &cfg, CODE))];

    let mut mutations: Vec<(&str, RunConfig)> = vec![
        ("manager=mosaic", {
            let mut c = cfg;
            c.manager = ManagerKind::mosaic();
            c
        }),
        ("manager=mosaic-nocac", {
            let mut c = cfg;
            c.manager = ManagerKind::Mosaic(CacConfig::disabled());
            c
        }),
        ("manager=mosaic-bc", {
            let mut c = cfg;
            c.manager = ManagerKind::Mosaic(CacConfig::with_bulk_copy());
            c
        }),
        ("manager=mosaic-ideal", {
            let mut c = cfg;
            c.manager = ManagerKind::Mosaic(CacConfig::ideal());
            c
        }),
        ("manager=gpu-mmu-2m", {
            let mut c = cfg;
            c.manager = ManagerKind::GpuMmu2M;
            c
        }),
        ("manager=migrating", {
            let mut c = cfg;
            c.manager = ManagerKind::Migrating(MigratingConfig::default());
            c
        }),
        ("paging=preloaded", {
            let mut c = cfg;
            c.paging = DemandPagingMode::PreloadedFree;
            c
        }),
        ("seed", {
            let mut c = cfg;
            c.seed = 43;
            c
        }),
        ("fragmentation", {
            let mut c = cfg;
            c.fragmentation = Some((0.5, 0.9));
            c
        }),
        ("oversubscription", {
            let mut c = cfg;
            c.oversubscription = Some(2.0);
            c
        }),
        ("scale.ws_divisor", {
            let mut c = cfg;
            c.scale.ws_divisor *= 2;
            c
        }),
        ("scale.mem_ops_per_warp", {
            let mut c = cfg;
            c.scale.mem_ops_per_warp += 1;
            c
        }),
        ("scale.warps_per_sm", {
            let mut c = cfg;
            c.scale.warps_per_sm += 1;
            c
        }),
        ("scale.phases", {
            let mut c = cfg;
            c.scale.phases += 1;
            c
        }),
        ("system.sm_count", {
            let mut c = cfg;
            c.system.sm_count += 1;
            c
        }),
        ("system.core_clock_mhz", {
            let mut c = cfg;
            c.system.core_clock_mhz += 1.0;
            c
        }),
        ("system.l1_tlb.base", {
            let mut c = cfg;
            c.system.l1_tlb.base_entries /= 2;
            c
        }),
        ("system.l1_tlb.large", {
            let mut c = cfg;
            c.system.l1_tlb.large_entries /= 2;
            c
        }),
        ("system.l2_tlb.base", {
            let mut c = cfg;
            c.system.l2_tlb.base_entries /= 2;
            c
        }),
        ("system.l2_tlb.large", {
            let mut c = cfg;
            c.system.l2_tlb.large_entries /= 2;
            c
        }),
        ("system.walker_threads", {
            let mut c = cfg;
            c.system.walker_threads /= 2;
            c
        }),
        ("system.walk_cache_entries", {
            let mut c = cfg;
            c.system.walk_cache_entries = 16;
            c
        }),
        ("system.memory_bytes", {
            let mut c = cfg;
            c.system.memory_bytes /= 2;
            c
        }),
        ("system.ideal_tlb", {
            let mut c = cfg;
            c.system.ideal_tlb = true;
            c
        }),
        ("system.compaction_stalls_gpu", {
            let mut c = cfg;
            c.system.compaction_stalls_gpu = true;
            c
        }),
    ];
    // Every multi-GPU axis must move the key: fleet size, both
    // interconnect wire parameters, the topology, and the placement
    // policy (including the migrate threshold) all change simulated
    // output, so a cache entry from one fleet shape must never serve
    // another.
    mutations.extend([
        ("fleet.gpus", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c
        }),
        ("fleet.topology", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c.fleet.interconnect.topology = Topology::Ring;
            c
        }),
        ("fleet.link_latency", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c.fleet.interconnect.link_latency *= 2;
            c
        }),
        ("fleet.cycles_per_flit", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c.fleet.interconnect.cycles_per_flit += 1;
            c
        }),
        ("fleet.placement=replicate", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c.fleet.placement = PlacementPolicy::ReplicateReadOnly;
            c
        }),
        ("fleet.placement=migrate", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c.fleet.placement = PlacementPolicy::MigrateOnThreshold { threshold: 8 };
            c
        }),
        ("fleet.placement=migrate(threshold)", {
            let mut c = cfg;
            c.fleet.gpus = 2;
            c.fleet.placement = PlacementPolicy::MigrateOnThreshold { threshold: 16 };
            c
        }),
    ]);
    // Variation inside a manager's policy config must also move the key.
    mutations.push(("manager=mosaic(threshold)", {
        let mut c = cfg;
        let mut cac = CacConfig::default();
        cac.occupancy_threshold /= 2.0;
        c.manager = ManagerKind::Mosaic(cac);
        c
    }));
    for (name, mutated) in &mutations {
        keys.push((name, run_key(&w, mutated, CODE)));
    }
    keys.push(("workload=GUPS", run_key(&Workload::from_names(&["GUPS"]), &cfg, CODE)));
    keys.push(("workload=MM+GUPS", run_key(&Workload::from_names(&["MM", "GUPS"]), &cfg, CODE)));
    keys.push(("code", run_key(&w, &cfg, Digest(0xbeef))));

    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(
                keys[i].1, keys[j].1,
                "mutations {:?} and {:?} must land on distinct keys",
                keys[i].0, keys[j].0
            );
        }
    }
}
