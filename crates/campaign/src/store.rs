//! Disk-backed content-addressed store of completed simulation runs.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<key-hex32>.entry   one run result per file
//! <root>/index.tsv                   append-only human-greppable index
//! ```
//!
//! Entries are written atomically (temp file + rename within the objects
//! directory), so a crash mid-write can never leave a half-entry under a
//! valid key. Loads are corruption-tolerant: any parse mismatch — a
//! truncated file, an entry written by a different format version, a key
//! that does not round-trip — is treated as a cache miss, never an error.
//! The index is advisory (used only for `campaign status` summaries and
//! human inspection); unparseable index lines are skipped.

use crate::digest::{run_key, Digest};
use mosaic_core::ManagerStats;
use mosaic_gpusim::{AppResult, RunConfig, RunResult, SystemStats};
use mosaic_telemetry::{StallBreakdown, StallBucket};
use mosaic_workloads::Workload;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Entry format version; bump on any layout change. Participates in the
/// cache key, so a version bump invalidates every existing entry.
pub const ENTRY_VERSION: &str = "mosaic-campaign entry v2";

/// The workspace code digest this binary was built from, as computed by
/// `build.rs` over every workspace `.rs` file plus `Cargo.lock`.
pub fn built_code_digest() -> Digest {
    Digest::from_hex(env!("MOSAIC_CODE_DIGEST")).expect("build.rs emits 32 hex chars")
}

/// A cache hit: the stored result plus the wall time the original
/// computation took (used for time-saved accounting).
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The deserialized run result, bit-identical to the stored one.
    pub result: RunResult,
    /// Milliseconds the original (cold) simulation took.
    pub wall_ms: u64,
}

/// Hit/miss/store counters of one [`Store`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that returned a stored result.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Failed writes (warned, never fatal).
    pub failures: u64,
    /// Sum of original wall times of all hits — simulation time skipped.
    pub saved_ms: u64,
}

/// A persistent content-addressed run cache rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    code: Digest,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    failures: AtomicU64,
    saved_ms: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`, keyed under
    /// this binary's workspace code digest.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with_code_digest(dir, built_code_digest())
    }

    /// Opens a store under an explicit code digest. Exists for tests
    /// that need to simulate a source change without rebuilding.
    pub fn open_with_code_digest(dir: impl Into<PathBuf>, code: Digest) -> std::io::Result<Self> {
        let root = dir.into();
        fs::create_dir_all(root.join("objects"))?;
        Ok(Store {
            root,
            code,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            saved_ms: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The code digest entries are keyed under.
    pub fn code_digest(&self) -> Digest {
        self.code
    }

    /// Cache key of one `(workload, config)` run under this store's code
    /// digest.
    pub fn run_key(&self, workload: &Workload, cfg: &RunConfig) -> Digest {
        run_key(workload, cfg, self.code)
    }

    fn object_path(&self, key: Digest) -> PathBuf {
        self.root.join("objects").join(format!("{key}.entry"))
    }

    /// Looks up a key, counting the outcome toward [`Store::stats`].
    pub fn lookup(&self, key: Digest) -> Option<CachedRun> {
        match self.peek(key) {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                self.saved_ms.fetch_add(hit.wall_ms, Ordering::SeqCst);
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Looks up a key without touching the hit/miss counters (used by
    /// `campaign status`, which must not skew run accounting).
    pub fn peek(&self, key: Digest) -> Option<CachedRun> {
        let text = fs::read_to_string(self.object_path(key)).ok()?;
        parse_entry(&text, key, self.code)
    }

    /// Stores one result under `key`. Write failures are reported on
    /// stderr and counted, but never abort the campaign — the result is
    /// already in memory; losing the cache copy only costs a future
    /// re-run.
    pub fn insert(&self, key: Digest, result: &RunResult, wall_ms: u64) {
        match self.try_insert(key, result, wall_ms) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => {
                self.failures.fetch_add(1, Ordering::SeqCst);
                eprintln!("[campaign] warning: failed to store {key}: {e}");
            }
        }
    }

    fn try_insert(&self, key: Digest, result: &RunResult, wall_ms: u64) -> std::io::Result<()> {
        let rendered = render_entry(key, self.code, result, wall_ms);
        let final_path = self.object_path(key);
        // Unique temp name per (key, thread) so concurrent workers never
        // clobber each other's in-flight writes; the rename is atomic.
        let tmp_path =
            self.root.join("objects").join(format!(".{key}.{:?}.tmp", std::thread::current().id()));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(rendered.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;

        let mut line = String::new();
        let _ = writeln!(
            line,
            "{key}\t{}\t{wall_ms}\t{}\t{}",
            self.code, result.workload, result.manager
        );
        let mut index = fs::OpenOptions::new().create(true).append(true).open(self.index_path())?;
        index.write_all(line.as_bytes())?;
        Ok(())
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.tsv")
    }

    /// Parses the advisory index, skipping unparseable lines. Returns
    /// `(key, code, wall_ms, workload, manager)` tuples.
    pub fn index_entries(&self) -> Vec<(Digest, Digest, u64, String, String)> {
        let Ok(text) = fs::read_to_string(self.index_path()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let mut cols = line.split('\t');
            let (Some(key), Some(code), Some(ms), Some(w), Some(m)) =
                (cols.next(), cols.next(), cols.next(), cols.next(), cols.next())
            else {
                continue;
            };
            let (Some(key), Some(code), Ok(ms)) =
                (Digest::from_hex(key), Digest::from_hex(code), ms.parse::<u64>())
            else {
                continue;
            };
            out.push((key, code, ms, w.to_string(), m.to_string()));
        }
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            stores: self.stores.load(Ordering::SeqCst),
            failures: self.failures.load(Ordering::SeqCst),
            saved_ms: self.saved_ms.load(Ordering::SeqCst),
        }
    }
}

/// Renders one entry in the strict fixed-order `key=value` text format.
///
/// Floats use the `{:?}` rendering, which Rust guarantees to be the
/// shortest string that parses back to the exact same bits — the property
/// the cache-hit ≡ recompute contract rests on.
fn render_entry(key: Digest, code: Digest, result: &RunResult, wall_ms: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{ENTRY_VERSION}");
    let _ = writeln!(s, "key={key}");
    let _ = writeln!(s, "code={code}");
    let _ = writeln!(s, "wall_ms={wall_ms}");
    let _ = writeln!(s, "workload={}", result.workload);
    let _ = writeln!(s, "manager={}", result.manager);
    let _ = writeln!(s, "total_cycles={}", result.total_cycles);
    let _ = writeln!(s, "apps={}", result.apps.len());
    for app in &result.apps {
        let _ = writeln!(s, "app={}", app.name);
        let _ = writeln!(s, "asid={}", app.asid);
        let _ = writeln!(s, "instructions={}", app.instructions);
        let _ = writeln!(s, "cycles={}", app.cycles);
        let _ = writeln!(s, "ipc={:?}", app.ipc);
        let _ = writeln!(s, "stall_cycles={}", app.stall_cycles);
        let stall: Vec<String> =
            app.stall.iter().map(|(b, c)| format!("{}:{c}", b.label())).collect();
        let _ = writeln!(s, "stall={}", stall.join(","));
    }
    let st = &result.stats;
    let _ = writeln!(s, "l1_tlb_hits={}", st.l1_tlb_hits);
    let _ = writeln!(s, "l1_tlb_total={}", st.l1_tlb_total);
    let _ = writeln!(s, "l2_tlb_hits={}", st.l2_tlb_hits);
    let _ = writeln!(s, "l2_tlb_total={}", st.l2_tlb_total);
    let _ = writeln!(s, "walks={}", st.walks);
    let _ = writeln!(s, "walk_latency_mean={:?}", st.walk_latency_mean);
    let _ = writeln!(s, "l1_cache_hit_rate={:?}", st.l1_cache_hit_rate);
    let _ = writeln!(s, "l2_cache_hit_rate={:?}", st.l2_cache_hit_rate);
    let _ = writeln!(s, "dram_row_hit_rate={:?}", st.dram_row_hit_rate);
    let _ = writeln!(s, "iobus_transfers={}", st.iobus_transfers);
    let _ = writeln!(s, "iobus_bytes={}", st.iobus_bytes);
    let _ = writeln!(s, "iobus_queue_mean={:?}", st.iobus_queue_mean);
    let _ = writeln!(s, "iobus_queue_max={}", st.iobus_queue_max);
    let _ = writeln!(s, "iobus_service_mean={:?}", st.iobus_service_mean);
    let _ = writeln!(s, "iobus_service_max={}", st.iobus_service_max);
    let _ = writeln!(s, "refaults={}", st.refaults);
    let _ = writeln!(s, "far_faults={}", st.manager.far_faults);
    let _ = writeln!(s, "transferred_bytes={}", st.manager.transferred_bytes);
    let _ = writeln!(s, "coalesces={}", st.manager.coalesces);
    let _ = writeln!(s, "splinters={}", st.manager.splinters);
    let _ = writeln!(s, "migrations={}", st.manager.migrations);
    let _ = writeln!(s, "emergency_allocations={}", st.manager.emergency_allocations);
    let _ = writeln!(s, "evictions={}", st.manager.evictions);
    let _ = writeln!(s, "writeback_bytes={}", st.manager.writeback_bytes);
    let _ = writeln!(s, "footprint_bytes={}", st.footprint_bytes);
    let _ = writeln!(s, "app_footprint_bytes={}", st.app_footprint_bytes);
    let _ = writeln!(s, "touched_bytes={}", st.touched_bytes);
    let _ = writeln!(s, "memory_bloat={:?}", st.memory_bloat);
    let _ = writeln!(s, "remote_accesses={}", st.remote_accesses);
    let _ = writeln!(s, "interconnect_bytes={}", st.interconnect_bytes);
    let _ = writeln!(s, "fleet_migrations={}", st.fleet_migrations);
    let _ = writeln!(s, "fleet_replications={}", st.fleet_replications);
    let _ = writeln!(s, "fleet_copy_bytes={}", st.fleet_copy_bytes);
    let _ = writeln!(s, "end");
    s
}

/// A strict line cursor over the fixed-order entry format. Any deviation
/// (missing field, wrong name, unparsable value) turns the whole entry
/// into a miss via `Option` propagation.
struct Cursor<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Cursor<'a> {
    fn field(&mut self, name: &str) -> Option<&'a str> {
        let line = self.lines.next()?;
        let (n, v) = line.split_once('=')?;
        if n == name {
            Some(v)
        } else {
            None
        }
    }

    fn u64(&mut self, name: &str) -> Option<u64> {
        self.field(name)?.parse().ok()
    }

    fn f64(&mut self, name: &str) -> Option<f64> {
        self.field(name)?.parse().ok()
    }
}

/// Parses an entry, validating the format version, the self-recorded key
/// against the file's expected key, and the code digest. Returns `None`
/// (a miss) on any mismatch.
fn parse_entry(text: &str, expect_key: Digest, expect_code: Digest) -> Option<CachedRun> {
    let mut c = Cursor { lines: text.lines() };
    if c.lines.next()? != ENTRY_VERSION {
        return None;
    }
    if Digest::from_hex(c.field("key")?)? != expect_key {
        return None;
    }
    if Digest::from_hex(c.field("code")?)? != expect_code {
        return None;
    }
    let wall_ms = c.u64("wall_ms")?;
    let workload = c.field("workload")?.to_string();
    let manager = c.field("manager")?.to_string();
    let total_cycles = c.u64("total_cycles")?;
    let n_apps = c.u64("apps")?;
    let mut apps = Vec::new();
    for _ in 0..n_apps {
        let name = c.field("app")?.to_string();
        let asid = c.field("asid")?.parse().ok()?;
        let instructions = c.u64("instructions")?;
        let cycles = c.u64("cycles")?;
        let ipc = c.f64("ipc")?;
        let stall_cycles = c.u64("stall_cycles")?;
        let stall = parse_stall(c.field("stall")?)?;
        apps.push(AppResult { name, asid, instructions, cycles, ipc, stall_cycles, stall });
    }
    let stats = SystemStats {
        l1_tlb_hits: c.u64("l1_tlb_hits")?,
        l1_tlb_total: c.u64("l1_tlb_total")?,
        l2_tlb_hits: c.u64("l2_tlb_hits")?,
        l2_tlb_total: c.u64("l2_tlb_total")?,
        walks: c.u64("walks")?,
        walk_latency_mean: c.f64("walk_latency_mean")?,
        l1_cache_hit_rate: c.f64("l1_cache_hit_rate")?,
        l2_cache_hit_rate: c.f64("l2_cache_hit_rate")?,
        dram_row_hit_rate: c.f64("dram_row_hit_rate")?,
        iobus_transfers: c.u64("iobus_transfers")?,
        iobus_bytes: c.u64("iobus_bytes")?,
        iobus_queue_mean: c.f64("iobus_queue_mean")?,
        iobus_queue_max: c.u64("iobus_queue_max")?,
        iobus_service_mean: c.f64("iobus_service_mean")?,
        iobus_service_max: c.u64("iobus_service_max")?,
        refaults: c.u64("refaults")?,
        manager: ManagerStats {
            far_faults: c.u64("far_faults")?,
            transferred_bytes: c.u64("transferred_bytes")?,
            coalesces: c.u64("coalesces")?,
            splinters: c.u64("splinters")?,
            migrations: c.u64("migrations")?,
            emergency_allocations: c.u64("emergency_allocations")?,
            evictions: c.u64("evictions")?,
            writeback_bytes: c.u64("writeback_bytes")?,
        },
        footprint_bytes: c.u64("footprint_bytes")?,
        app_footprint_bytes: c.u64("app_footprint_bytes")?,
        touched_bytes: c.u64("touched_bytes")?,
        memory_bloat: c.f64("memory_bloat")?,
        remote_accesses: c.u64("remote_accesses")?,
        interconnect_bytes: c.u64("interconnect_bytes")?,
        fleet_migrations: c.u64("fleet_migrations")?,
        fleet_replications: c.u64("fleet_replications")?,
        fleet_copy_bytes: c.u64("fleet_copy_bytes")?,
    };
    if c.lines.next()? != "end" {
        return None;
    }
    let result = RunResult { workload, manager, apps, stats, total_cycles };
    Some(CachedRun { result, wall_ms })
}

/// Parses the `label:cycles,...` stall rendering, requiring every bucket
/// in [`StallBucket::ALL`] order.
fn parse_stall(s: &str) -> Option<StallBreakdown> {
    let mut bd = StallBreakdown::default();
    let mut parts = s.split(',');
    for bucket in StallBucket::ALL {
        let part = parts.next()?;
        let (label, cycles) = part.split_once(':')?;
        if label != bucket.label() {
            return None;
        }
        bd.add(bucket, cycles.parse().ok()?);
    }
    if parts.next().is_some() {
        return None;
    }
    Some(bd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> RunResult {
        let mut stall = StallBreakdown::default();
        stall.add(StallBucket::TlbWalk, 123);
        stall.add(StallBucket::Compute, 456);
        RunResult {
            workload: "MM+GUPS".to_string(),
            manager: "Mosaic".to_string(),
            apps: vec![
                AppResult {
                    name: "MM".to_string(),
                    asid: 0,
                    instructions: 1000,
                    cycles: 2500,
                    ipc: 0.4,
                    stall_cycles: 579,
                    stall,
                },
                AppResult {
                    name: "GUPS".to_string(),
                    asid: 1,
                    instructions: 800,
                    cycles: 3000,
                    ipc: 800.0 / 3000.0,
                    stall_cycles: 0,
                    stall: StallBreakdown::default(),
                },
            ],
            stats: SystemStats {
                l1_tlb_hits: 7,
                l1_tlb_total: 10,
                walk_latency_mean: 0.1 + 0.2, // deliberately non-representable
                memory_bloat: 1.0 / 3.0,
                ..SystemStats::default()
            },
            total_cycles: 3000,
        }
    }

    #[test]
    fn entry_round_trips_bit_identically() {
        let key = Digest::of(b"k");
        let code = Digest::of(b"c");
        let r = sample_result();
        let text = render_entry(key, code, &r, 42);
        let hit = parse_entry(&text, key, code).expect("round trip");
        assert_eq!(hit.wall_ms, 42);
        assert_eq!(hit.result, r);
        assert_eq!(hit.result.apps[0].ipc.to_bits(), r.apps[0].ipc.to_bits());
        assert_eq!(
            hit.result.stats.walk_latency_mean.to_bits(),
            r.stats.walk_latency_mean.to_bits()
        );
    }

    #[test]
    fn wrong_key_or_code_is_a_miss() {
        let key = Digest::of(b"k");
        let code = Digest::of(b"c");
        let text = render_entry(key, code, &sample_result(), 1);
        assert!(parse_entry(&text, Digest::of(b"other"), code).is_none());
        assert!(parse_entry(&text, key, Digest::of(b"other")).is_none());
    }

    #[test]
    fn truncated_or_mangled_entries_are_misses() {
        let key = Digest::of(b"k");
        let code = Digest::of(b"c");
        let text = render_entry(key, code, &sample_result(), 1);
        for cut in [0, 1, text.len() / 2, text.len() - 2] {
            assert!(parse_entry(&text[..cut], key, code).is_none(), "cut at {cut}");
        }
        let mangled = text.replace("total_cycles=", "total_cycles=x");
        assert!(parse_entry(&mangled, key, code).is_none());
    }
}
