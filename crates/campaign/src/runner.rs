//! Campaign report surfaces: deterministic renderings of expansion,
//! results, and resumable-progress status.
//!
//! Everything here is a pure function of its inputs, so `campaign run`
//! output is byte-identical whether points were simulated or served from
//! the cache — the invariant the CI `campaign-smoke` step diffs for.
//! Cache accounting (hits/misses/ETA) goes to stderr in the driver, never
//! into these renderings.

use crate::matrix::Campaign;
use crate::store::Store;
use mosaic_gpusim::RunResult;
use mosaic_telemetry::progress::fmt_duration;
use std::fmt::Write as _;
use std::time::Duration;

/// Renders `campaign expand`: the deterministic job list a spec expands
/// into, with per-point cache keys elided (they depend on the code
/// digest, which would make the expansion listing unstable across
/// builds).
pub fn render_expand(c: &Campaign) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "campaign {:?}: {} points ({} skipped), scope {:?}",
        c.name,
        c.points.len(),
        c.skipped.len(),
        c.scope
    );
    for (i, p) in c.points.iter().enumerate() {
        let _ = writeln!(s, "  [{i:>4}] {}", p.label);
    }
    render_skipped(&mut s, c);
    s
}

/// Renders `campaign run` results — one row per point, in expansion
/// order, from the [`RunResult`]s alone.
pub fn render_results(c: &Campaign, results: &[RunResult]) -> String {
    assert_eq!(c.points.len(), results.len(), "one result per point");
    let mut s = String::new();
    let _ = writeln!(s, "campaign {:?}: {} points, scope {:?}", c.name, c.points.len(), c.scope);
    let _ = writeln!(
        s,
        "{:<44} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "point", "cycles", "l1-tlb", "l2-tlb", "ipc", "far-fault"
    );
    for (p, r) in c.points.iter().zip(results) {
        let ipc: f64 = r.apps.iter().map(|a| a.ipc).sum();
        let _ = writeln!(
            s,
            "{:<44} {:>12} {:>7.1}% {:>7.1}% {:>8.3} {:>10}",
            p.label,
            r.total_cycles,
            100.0 * r.stats.l1_tlb_hit_rate(),
            100.0 * r.stats.l2_tlb_hit_rate(),
            ipc,
            r.stats.manager.far_faults,
        );
    }
    render_skipped(&mut s, c);
    s
}

fn render_skipped(s: &mut String, c: &Campaign) {
    for sk in &c.skipped {
        let _ = writeln!(s, "  skipped: {} ({})", sk.label, sk.reason);
    }
}

/// Resumable-progress snapshot of a campaign against a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Points in the campaign.
    pub total: usize,
    /// Points already present in the store (would be cache hits).
    pub cached: usize,
    /// Sum of original wall times of the cached points, in ms.
    pub cached_wall_ms: u64,
}

impl CampaignStatus {
    /// Points still to simulate.
    pub fn pending(&self) -> usize {
        self.total - self.cached
    }

    /// Estimated serial wall time for the pending points, extrapolated
    /// from the mean wall time of the cached ones. `None` until at least
    /// one point is cached.
    pub fn estimated_remaining(&self) -> Option<Duration> {
        if self.cached == 0 || self.pending() == 0 {
            return (self.cached > 0).then_some(Duration::ZERO);
        }
        let per_point = self.cached_wall_ms as f64 / self.cached as f64;
        Some(Duration::from_secs_f64(per_point * self.pending() as f64 / 1000.0))
    }
}

/// Probes the store for every point of a campaign (without touching the
/// store's hit/miss accounting).
pub fn status(c: &Campaign, store: &Store) -> CampaignStatus {
    let mut cached = 0;
    let mut cached_wall_ms = 0;
    for p in &c.points {
        if let Some(hit) = store.peek(store.run_key(&p.workload, &p.cfg)) {
            cached += 1;
            cached_wall_ms += hit.wall_ms;
        }
    }
    CampaignStatus { total: c.points.len(), cached, cached_wall_ms }
}

/// Renders `campaign status`: per-point cached/pending markers plus the
/// serial-time estimate for what remains.
pub fn render_status(c: &Campaign, store: &Store) -> String {
    let st = status(c, store);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "campaign {:?}: {}/{} points cached, {} pending (store {}, code {})",
        c.name,
        st.cached,
        st.total,
        st.pending(),
        store.root().display(),
        store.code_digest().short(),
    );
    for p in &c.points {
        let mark = if store.peek(store.run_key(&p.workload, &p.cfg)).is_some() {
            "cached "
        } else {
            "pending"
        };
        let _ = writeln!(s, "  [{mark}] {}", p.label);
    }
    render_skipped(&mut s, c);
    match st.estimated_remaining() {
        Some(d) if st.pending() > 0 => {
            let _ = writeln!(s, "estimated serial time remaining: {}", fmt_duration(d));
        }
        Some(_) => {
            let _ = writeln!(s, "campaign complete; re-run is all cache hits");
        }
        None => {
            let _ = writeln!(s, "no points cached yet; no time estimate");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Spec;
    use mosaic_gpusim::run_workload;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mosaic-campaign-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const SPEC: &str = "name = \"s\"\nscope = \"smoke\"\n[matrix]\nworkloads = [\"MM\"]\nmanagers = [\"gpu-mmu\", \"mosaic\"]";

    #[test]
    fn expand_listing_is_deterministic() {
        let c = Spec::parse(SPEC).unwrap().expand();
        let a = render_expand(&c);
        let b = render_expand(&c);
        assert_eq!(a, b);
        assert!(a.contains("2 points"));
        assert!(a.contains("MM mosaic"));
    }

    #[test]
    fn status_tracks_the_store_and_results_render_identically() {
        let c = Spec::parse(SPEC).unwrap().expand();
        let dir = tmpdir("status");
        let store = Store::open(&dir).unwrap();
        let st = status(&c, &store);
        assert_eq!(st, CampaignStatus { total: 2, cached: 0, cached_wall_ms: 0 });
        assert_eq!(st.estimated_remaining(), None);
        assert!(render_status(&c, &store).contains("0/2 points cached"));

        // Simulate and store the first point only.
        let p = &c.points[0];
        let r0 = run_workload(&p.workload, p.cfg);
        store.insert(store.run_key(&p.workload, &p.cfg), &r0, 30);
        let st = status(&c, &store);
        assert_eq!(st.cached, 1);
        assert_eq!(st.pending(), 1);
        assert_eq!(st.estimated_remaining(), Some(Duration::from_millis(30)));
        let rendered = render_status(&c, &store);
        assert!(rendered.contains("1/2 points cached"));
        assert!(rendered.contains("[cached ] MM gpu-mmu"));
        assert!(rendered.contains("[pending] MM mosaic"));

        // Results render identically from fresh and cached copies.
        let p1 = &c.points[1];
        let r1 = run_workload(&p1.workload, p1.cfg);
        let fresh = render_results(&c, &[r0.clone(), r1.clone()]);
        let cached = store.lookup(store.run_key(&p.workload, &p.cfg)).unwrap().result;
        let warm = render_results(&c, &[cached, r1]);
        assert_eq!(fresh, warm, "cache hit must not change rendered output");
        assert!(fresh.contains("MM gpu-mmu"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
