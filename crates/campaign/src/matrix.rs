//! The scenario-matrix DSL: a small TOML-subset format describing cross
//! products of simulation knobs, expanded deterministically into flat
//! `(Workload, RunConfig)` job lists.
//!
//! ```toml
//! name = "smoke"
//! scope = "smoke"            # smoke | default | full (workload scale)
//!
//! [matrix]
//! workloads = ["MM", "GUPS", "MM+GUPS"]   # '+' composes multi-app mixes
//! managers = ["gpu-mmu", "mosaic"]        # see MANAGER_TOKENS
//! seeds = [42]
//! paging = ["on-demand"]                  # on-demand | preloaded
//! oversubscription = ["none", 2.0]        # none | factor >= 1.0
//! fragmentation = ["none", "0.6:0.85"]    # none | index:occupancy
//! l1_tlb = ["128/16"]                     # base/large entries per SM
//! l2_tlb = ["512/256"]                    # shared, base/large entries
//! ```
//!
//! Only `workloads` is required; every other axis defaults to the single
//! baseline value. Expansion nests the axes in one fixed order
//! (workloads, managers, l1, l2, fragmentation, oversubscription,
//! paging, seeds), so a given file always yields the same job list in
//! the same order — the property resumable campaigns rely on.
//! Semantically invalid combinations (preloaded paging with
//! oversubscription) are skipped deterministically and reported, never
//! silently dropped.

use mosaic_core::cac::CacConfig;
use mosaic_gpusim::{ManagerKind, RunConfig};
use mosaic_workloads::{AppProfile, ScaleConfig, Workload};
use std::fmt;

/// Recognized `managers` tokens, with the configuration each denotes.
pub const MANAGER_TOKENS: [&str; 8] = [
    "gpu-mmu",
    "gpu-mmu-2m",
    "mosaic",
    "mosaic-nocac",
    "mosaic-bc",
    "mosaic-ideal",
    "migrating",
    "ideal-tlb",
];

/// Workload scale tier of a campaign; mirrors the experiment crate's
/// `Scope` so campaign cache entries are shared with the figure drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignScope {
    /// Reduced scale for CI and quick runs.
    Smoke,
    /// The default (paper) scale.
    Default,
    /// Alias of `Default` — campaign files list workloads explicitly, so
    /// the full/default distinction of the figure drivers collapses.
    Full,
}

impl CampaignScope {
    /// The workload scale this tier runs at. Must stay identical to
    /// `mosaic_experiments::common::Scope::scale` (cross-checked by a
    /// test over the run-key digest in the experiments crate).
    pub fn scale(self) -> ScaleConfig {
        match self {
            CampaignScope::Smoke => {
                ScaleConfig { ws_divisor: 16, mem_ops_per_warp: 120, warps_per_sm: 6, phases: 1 }
            }
            _ => ScaleConfig::default(),
        }
    }
}

/// A parse or validation error, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "campaign spec: {}", self.message)
        } else {
            write!(f, "campaign spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// A parsed, validated campaign specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Campaign name (used in reports and status files).
    pub name: String,
    /// Workload scale tier.
    pub scope: CampaignScope,
    /// Workload mixes, each `"APP"` or `"APP+APP+..."`.
    pub workloads: Vec<String>,
    /// Manager tokens (see [`MANAGER_TOKENS`]).
    pub managers: Vec<String>,
    /// Master seeds.
    pub seeds: Vec<u64>,
    /// Paging modes (`"on-demand"` / `"preloaded"`).
    pub paging: Vec<String>,
    /// Oversubscription factors; `None` = fits in memory.
    pub oversubscription: Vec<Option<f64>>,
    /// Pre-fragmentation `(index, occupancy)` points; `None` = pristine.
    pub fragmentation: Vec<Option<(f64, f64)>>,
    /// L1 TLB geometries as `(base_entries, large_entries)`.
    pub l1_tlb: Vec<(usize, usize)>,
    /// L2 TLB geometries as `(base_entries, large_entries)`.
    pub l2_tlb: Vec<(usize, usize)>,
}

/// One expanded campaign point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Human-facing label: workload and manager plus any non-default
    /// axis values.
    pub label: String,
    /// The workload to run.
    pub workload: Workload,
    /// The full run configuration.
    pub cfg: RunConfig,
}

/// A combination the expansion rejected, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedPoint {
    /// Label the point would have had.
    pub label: String,
    /// Why it cannot run.
    pub reason: String,
}

/// A fully-expanded campaign: the deterministic job list plus the
/// combinations that were skipped as semantically invalid.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name from the spec.
    pub name: String,
    /// Scale tier from the spec.
    pub scope: CampaignScope,
    /// Runnable points, in deterministic expansion order.
    pub points: Vec<Point>,
    /// Skipped combinations, in the order they were encountered.
    pub skipped: Vec<SkippedPoint>,
}

/// One scalar value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

impl Value {
    fn describe(&self) -> String {
        match self {
            Value::Str(s) => format!("{s:?}"),
            Value::Num(n) => format!("{n}"),
        }
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, ParseError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(line, format!("unterminated string {s}"));
        };
        if inner.contains('"') {
            return err(line, format!("embedded quote in {s}"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match s.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Value::Num(n)),
        _ => err(line, format!("expected a quoted string or a number, got {s}")),
    }
}

/// Parses `value` as either a single scalar or a single-line
/// `[a, b, ...]` array; a scalar denotes a one-element axis.
fn parse_values(s: &str, line: usize) -> Result<Vec<Value>, ParseError> {
    let s = s.trim();
    let Some(rest) = s.strip_prefix('[') else {
        return Ok(vec![parse_scalar(s, line)?]);
    };
    let Some(inner) = rest.strip_suffix(']') else {
        return err(line, "arrays must open and close on one line");
    };
    let inner = inner.trim();
    if inner.is_empty() {
        return err(line, "empty axis (an axis needs at least one value)");
    }
    inner.split(',').map(|part| parse_scalar(part, line)).collect()
}

fn expect_str(v: &Value, line: usize, what: &str) -> Result<String, ParseError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Num(_) => err(line, format!("{what} must be a quoted string, got {}", v.describe())),
    }
}

fn parse_seed(v: &Value, line: usize) -> Result<u64, ParseError> {
    match v {
        Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
        _ => err(line, format!("seeds must be non-negative integers, got {}", v.describe())),
    }
}

fn parse_oversub(v: &Value, line: usize) -> Result<Option<f64>, ParseError> {
    match v {
        Value::Str(s) if s == "none" => Ok(None),
        Value::Num(n) if *n >= 1.0 => Ok(Some(*n)),
        _ => err(
            line,
            format!("oversubscription must be \"none\" or a factor >= 1.0, got {}", v.describe()),
        ),
    }
}

fn parse_fragmentation(v: &Value, line: usize) -> Result<Option<(f64, f64)>, ParseError> {
    let s = expect_str(v, line, "fragmentation")?;
    if s == "none" {
        return Ok(None);
    }
    let parsed = s.split_once(':').and_then(|(i, o)| {
        let (i, o) = (i.trim().parse::<f64>().ok()?, o.trim().parse::<f64>().ok()?);
        ((0.0..=1.0).contains(&i) && (0.0..=1.0).contains(&o)).then_some((i, o))
    });
    match parsed {
        Some(p) => Ok(Some(p)),
        None => err(
            line,
            format!("fragmentation must be \"none\" or \"index:occupancy\" with both in [0, 1], got {s:?}"),
        ),
    }
}

fn parse_tlb(v: &Value, line: usize, axis: &str) -> Result<(usize, usize), ParseError> {
    let s = expect_str(v, line, axis)?;
    let parsed = s.split_once('/').and_then(|(b, l)| {
        let (b, l) = (b.trim().parse::<usize>().ok()?, l.trim().parse::<usize>().ok()?);
        (b > 0).then_some((b, l))
    });
    match parsed {
        Some(p) => Ok(p),
        None => err(line, format!("{axis} must be \"base_entries/large_entries\", got {s:?}")),
    }
}

fn parse_workload_spec(v: &Value, line: usize) -> Result<String, ParseError> {
    let s = expect_str(v, line, "workloads")?;
    if s.is_empty() {
        return err(line, "empty workload spec");
    }
    for app in s.split('+') {
        if AppProfile::by_name(app.trim()).is_none() {
            return err(line, format!("unknown application {:?} in workload {s:?}", app.trim()));
        }
    }
    Ok(s)
}

fn parse_manager_token(v: &Value, line: usize) -> Result<String, ParseError> {
    let s = expect_str(v, line, "managers")?;
    if MANAGER_TOKENS.contains(&s.as_str()) {
        Ok(s)
    } else {
        err(line, format!("unknown manager {s:?} (expected one of {MANAGER_TOKENS:?})"))
    }
}

fn parse_paging_token(v: &Value, line: usize) -> Result<String, ParseError> {
    let s = expect_str(v, line, "paging")?;
    match s.as_str() {
        "on-demand" | "preloaded" => Ok(s),
        _ => err(line, format!("paging must be \"on-demand\" or \"preloaded\", got {s:?}")),
    }
}

impl Spec {
    /// Parses and validates one campaign file.
    pub fn parse(text: &str) -> Result<Spec, ParseError> {
        let mut name = None;
        let mut scope = CampaignScope::Default;
        let mut in_matrix = false;
        let mut workloads = None;
        let mut managers = None;
        let mut seeds = None;
        let mut paging = None;
        let mut oversubscription = None;
        let mut fragmentation = None;
        let mut l1_tlb = None;
        let mut l2_tlb = None;

        fn set<T>(
            slot: &mut Option<T>,
            value: T,
            key: &str,
            line: usize,
        ) -> Result<(), ParseError> {
            if slot.is_some() {
                return err(line, format!("duplicate key {key:?}"));
            }
            *slot = Some(value);
            Ok(())
        }

        let mut scope_set = false;
        for (i, raw) in text.lines().enumerate() {
            let lno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let Some(section) = section.strip_suffix(']') else {
                    return err(lno, format!("malformed section header {line:?}"));
                };
                match section.trim() {
                    "matrix" => in_matrix = true,
                    other => return err(lno, format!("unknown section [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lno, format!("expected key = value, got {line:?}"));
            };
            let key = key.trim();
            let values = parse_values(value, lno)?;
            let one = |what: &str| -> Result<&Value, ParseError> {
                if values.len() == 1 {
                    Ok(&values[0])
                } else {
                    err(lno, format!("{what} takes a single value, not an array"))
                }
            };
            if !in_matrix {
                match key {
                    "name" => {
                        set(&mut name, expect_str(one("name")?, lno, "name")?, key, lno)?;
                    }
                    "scope" => {
                        if scope_set {
                            return err(lno, "duplicate key \"scope\"");
                        }
                        scope_set = true;
                        scope = match expect_str(one("scope")?, lno, "scope")?.as_str() {
                            "smoke" => CampaignScope::Smoke,
                            "default" => CampaignScope::Default,
                            "full" => CampaignScope::Full,
                            other => {
                                return err(
                                    lno,
                                    format!("scope must be smoke/default/full, got {other:?}"),
                                )
                            }
                        };
                    }
                    other => {
                        return err(
                            lno,
                            format!(
                                "unknown top-level key {other:?} (matrix axes go under [matrix])"
                            ),
                        )
                    }
                }
                continue;
            }
            match key {
                "workloads" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_workload_spec(v, lno))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut workloads, parsed, key, lno)?;
                }
                "managers" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_manager_token(v, lno))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut managers, parsed, key, lno)?;
                }
                "seeds" => {
                    let parsed =
                        values.iter().map(|v| parse_seed(v, lno)).collect::<Result<Vec<_>, _>>()?;
                    set(&mut seeds, parsed, key, lno)?;
                }
                "paging" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_paging_token(v, lno))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut paging, parsed, key, lno)?;
                }
                "oversubscription" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_oversub(v, lno))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut oversubscription, parsed, key, lno)?;
                }
                "fragmentation" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_fragmentation(v, lno))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut fragmentation, parsed, key, lno)?;
                }
                "l1_tlb" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_tlb(v, lno, "l1_tlb"))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut l1_tlb, parsed, key, lno)?;
                }
                "l2_tlb" => {
                    let parsed = values
                        .iter()
                        .map(|v| parse_tlb(v, lno, "l2_tlb"))
                        .collect::<Result<Vec<_>, _>>()?;
                    set(&mut l2_tlb, parsed, key, lno)?;
                }
                other => return err(lno, format!("unknown matrix axis {other:?}")),
            }
        }

        let Some(workloads) = workloads else {
            return err(0, "missing required [matrix] axis \"workloads\"");
        };
        Ok(Spec {
            name: name.unwrap_or_else(|| "campaign".to_string()),
            scope,
            workloads,
            managers: managers.unwrap_or_else(|| vec!["mosaic".to_string()]),
            seeds: seeds.unwrap_or_else(|| vec![42]),
            paging: paging.unwrap_or_else(|| vec!["on-demand".to_string()]),
            oversubscription: oversubscription.unwrap_or_else(|| vec![None]),
            fragmentation: fragmentation.unwrap_or_else(|| vec![None]),
            l1_tlb: l1_tlb.unwrap_or_else(|| vec![(128, 16)]),
            l2_tlb: l2_tlb.unwrap_or_else(|| vec![(512, 256)]),
        })
    }

    /// Expands the cross product into the deterministic job list.
    ///
    /// Nesting order is fixed (workloads, managers, l1, l2,
    /// fragmentation, oversubscription, paging, seeds); invalid
    /// combinations are diverted to [`Campaign::skipped`] with a reason.
    pub fn expand(&self) -> Campaign {
        let base = RunConfig::new(ManagerKind::GpuMmu4K).with_scale(self.scope.scale());
        let mut points = Vec::new();
        let mut skipped = Vec::new();
        for wl in &self.workloads {
            let names: Vec<&str> = wl.split('+').map(str::trim).collect();
            let workload = Workload::from_names(&names);
            for mgr in &self.managers {
                for &l1 in &self.l1_tlb {
                    for &l2 in &self.l2_tlb {
                        for &frag in &self.fragmentation {
                            for &over in &self.oversubscription {
                                for paging in &self.paging {
                                    for &seed in &self.seeds {
                                        let mut label = format!("{wl} {mgr}");
                                        let mut cfg = base;
                                        cfg.manager = manager_for(mgr);
                                        if mgr == "ideal-tlb" {
                                            cfg = cfg.ideal_tlb();
                                        }
                                        if l1
                                            != (
                                                base.system.l1_tlb.base_entries,
                                                base.system.l1_tlb.large_entries,
                                            )
                                        {
                                            label.push_str(&format!(" l1={}/{}", l1.0, l1.1));
                                        }
                                        cfg.system.l1_tlb.base_entries = l1.0;
                                        cfg.system.l1_tlb.large_entries = l1.1;
                                        if l2
                                            != (
                                                base.system.l2_tlb.base_entries,
                                                base.system.l2_tlb.large_entries,
                                            )
                                        {
                                            label.push_str(&format!(" l2={}/{}", l2.0, l2.1));
                                        }
                                        cfg.system.l2_tlb.base_entries = l2.0;
                                        cfg.system.l2_tlb.large_entries = l2.1;
                                        if let Some((i, o)) = frag {
                                            label.push_str(&format!(" frag={i}:{o}"));
                                        }
                                        cfg.fragmentation = frag;
                                        if let Some(f) = over {
                                            label.push_str(&format!(" over={f}x"));
                                        }
                                        if paging == "preloaded" {
                                            label.push_str(" preloaded");
                                            cfg = cfg.preloaded();
                                        }
                                        if seed != 42 {
                                            label.push_str(&format!(" seed={seed}"));
                                        }
                                        cfg.seed = seed;
                                        if let Some(f) = over {
                                            if paging == "preloaded" {
                                                skipped.push(SkippedPoint {
                                                    label,
                                                    reason: "oversubscription requires on-demand paging (preloading assumes everything fits)".to_string(),
                                                });
                                                continue;
                                            }
                                            cfg = cfg.oversubscribed(f);
                                        }
                                        points.push(Point {
                                            label,
                                            workload: workload.clone(),
                                            cfg,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Campaign { name: self.name.clone(), scope: self.scope, points, skipped }
    }
}

/// Maps a validated manager token to its configuration.
fn manager_for(token: &str) -> ManagerKind {
    match token {
        "gpu-mmu" | "ideal-tlb" => ManagerKind::GpuMmu4K,
        "gpu-mmu-2m" => ManagerKind::GpuMmu2M,
        "mosaic" => ManagerKind::mosaic(),
        "mosaic-nocac" => ManagerKind::Mosaic(CacConfig::disabled()),
        "mosaic-bc" => ManagerKind::Mosaic(CacConfig::with_bulk_copy()),
        "mosaic-ideal" => ManagerKind::Mosaic(CacConfig::ideal()),
        "migrating" => ManagerKind::migrating(),
        other => unreachable!("token {other:?} passed validation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_gpusim::DemandPagingMode;

    const SMOKE: &str = r#"
name = "t"
scope = "smoke"

[matrix]
workloads = ["MM", "MM+GUPS"]
managers = ["gpu-mmu", "mosaic"]
oversubscription = ["none", 2.0]
"#;

    #[test]
    fn parses_and_expands_the_cross_product() {
        let spec = Spec::parse(SMOKE).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.scope, CampaignScope::Smoke);
        let c = spec.expand();
        assert_eq!(c.points.len(), 2 * 2 * 2);
        assert!(c.skipped.is_empty());
        // Fixed nesting order: workload outermost, oversubscription inner.
        assert_eq!(c.points[0].label, "MM gpu-mmu");
        assert_eq!(c.points[1].label, "MM gpu-mmu over=2x");
        assert_eq!(c.points[2].label, "MM mosaic");
        assert_eq!(c.points[4].label, "MM+GUPS gpu-mmu");
        assert_eq!(c.points[1].cfg.oversubscription, Some(2.0));
        assert_eq!(c.points[0].cfg.scale.ws_divisor, 16, "smoke scale");
        assert_eq!(c.points[5].workload.app_count(), 2);
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = Spec::parse(SMOKE).unwrap().expand();
        let b = Spec::parse(SMOKE).unwrap().expand();
        let labels = |c: &Campaign| c.points.iter().map(|p| p.label.clone()).collect::<Vec<_>>();
        assert_eq!(labels(&a), labels(&b));
        let cfgs =
            |c: &Campaign| c.points.iter().map(|p| format!("{:?}", p.cfg)).collect::<Vec<_>>();
        assert_eq!(cfgs(&a), cfgs(&b));
    }

    #[test]
    fn defaults_fill_every_optional_axis() {
        let spec = Spec::parse("[matrix]\nworkloads = [\"MM\"]").unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.scope, CampaignScope::Default);
        assert_eq!(spec.managers, vec!["mosaic"]);
        assert_eq!(spec.seeds, vec![42]);
        assert_eq!(spec.paging, vec!["on-demand"]);
        assert_eq!(spec.oversubscription, vec![None]);
        assert_eq!(spec.fragmentation, vec![None]);
        assert_eq!(spec.l1_tlb, vec![(128, 16)]);
        assert_eq!(spec.l2_tlb, vec![(512, 256)]);
        let c = spec.expand();
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.points[0].label, "MM mosaic");
        assert_eq!(c.points[0].cfg.scale, ScaleConfig::default());
    }

    #[test]
    fn invalid_combinations_are_skipped_with_reasons() {
        let spec = Spec::parse(
            "[matrix]\nworkloads = [\"MM\"]\npaging = [\"on-demand\", \"preloaded\"]\noversubscription = [\"none\", 2.0]",
        )
        .unwrap();
        let c = spec.expand();
        assert_eq!(c.points.len(), 3);
        assert_eq!(c.skipped.len(), 1);
        assert!(c.skipped[0].label.contains("preloaded"));
        assert!(c.skipped[0].reason.contains("on-demand"));
    }

    #[test]
    fn axis_values_reach_the_config() {
        let spec = Spec::parse(
            r#"
scope = "smoke"
[matrix]
workloads = ["GUPS"]
managers = ["ideal-tlb", "mosaic-nocac"]
fragmentation = ["0.5:0.9"]
l1_tlb = ["64/8"]
l2_tlb = ["256/128"]
paging = ["preloaded"]
seeds = [7]
"#,
        )
        .unwrap();
        let c = spec.expand();
        assert_eq!(c.points.len(), 2);
        let p = &c.points[0];
        assert!(p.cfg.system.ideal_tlb);
        assert_eq!(p.cfg.system.l1_tlb.base_entries, 64);
        assert_eq!(p.cfg.system.l1_tlb.large_entries, 8);
        assert_eq!(p.cfg.system.l2_tlb.base_entries, 256);
        assert_eq!(p.cfg.system.l2_tlb.large_entries, 128);
        assert_eq!(p.cfg.fragmentation, Some((0.5, 0.9)));
        assert_eq!(p.cfg.paging, DemandPagingMode::PreloadedFree);
        assert_eq!(p.cfg.seed, 7);
        assert_eq!(p.label, "GUPS ideal-tlb l1=64/8 l2=256/128 frag=0.5:0.9 preloaded seed=7");
        assert_eq!(c.points[1].cfg.manager.label(), "Mosaic (no CAC)");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Spec::parse("[matrix]\nworkloads = [\"NOSUCHAPP\"]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("NOSUCHAPP"));
        let e = Spec::parse("[matrix]\nworkloads = [\"MM\"]\nmanagers = [\"bogus\"]").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
        let e = Spec::parse("bogus_key = 1").unwrap_err();
        assert_eq!(e.line, 1);
        let e = Spec::parse("[matrix]\nworkloads = [\"MM\"]\nseeds = [1.5]").unwrap_err();
        assert_eq!(e.line, 3);
        let e =
            Spec::parse("[matrix]\nworkloads = [\"MM\"]\noversubscription = [0.5]").unwrap_err();
        assert_eq!(e.line, 3);
        let e = Spec::parse("scope = \"huge\"\n[matrix]\nworkloads = [\"MM\"]").unwrap_err();
        assert_eq!(e.line, 1);
        let e = Spec::parse("").unwrap_err();
        assert_eq!(e.line, 0, "missing workloads is a file-level error");
    }

    #[test]
    fn comments_and_scalars_are_accepted() {
        let spec = Spec::parse(
            "# header\nname = \"x\" # trailing\n[matrix]\nworkloads = \"MM\" # scalar axis\n",
        )
        .unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.workloads, vec!["MM"]);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = Spec::parse("[matrix]\nworkloads = [\"MM\"]\nworkloads = [\"GUPS\"]").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate"));
    }
}
