//! Stable content digests and the cache-key derivation.
//!
//! Cache keys must be *stable* (the same logical run always digests to
//! the same value, across processes and machines), *complete* (every
//! input that can change simulated output is part of the key), and
//! *canonical* (irrelevant presentation details — field ordering,
//! host-side execution knobs like `--jobs`/`--sim-threads` — cannot
//! move the key). [`KeyBuilder`] enforces canonical form by sorting
//! fields by name before hashing; [`run_key`] enumerates exactly the
//! inputs of [`mosaic_gpusim::run_workload`].

use mosaic_gpusim::RunConfig;
use mosaic_workloads::Workload;
use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content digest, rendered as 32 lowercase hex characters.
///
/// FNV-1a is not cryptographic, but the store only needs accidental
/// collision resistance: at the 10^6-entry campaign scale the birthday
/// bound on 128 bits is astronomically safe, and every entry self-checks
/// its full key on load anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl Digest {
    /// Digest of a byte string.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = Hasher::new();
        h.write(bytes);
        h.finish()
    }

    /// Parses the 32-hex-character rendering back into a digest.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }

    /// A shortened (12-character) prefix for human-facing reports.
    pub fn short(&self) -> String {
        format!("{self}")[..12].to_string()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a (128-bit) hasher.
#[derive(Debug, Clone)]
pub struct Hasher(u128);

impl Hasher {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Hasher(FNV_OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Finalizes into a [`Digest`].
    pub fn finish(&self) -> Digest {
        Digest(self.0)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonical `name=value` key assembly.
///
/// Fields are sorted by name before hashing, so the digest is invariant
/// under the order fields are added in — the property that makes key
/// derivation robust against refactors that merely reorder the
/// derivation code.
///
/// # Examples
///
/// ```
/// use mosaic_campaign::digest::KeyBuilder;
///
/// let mut a = KeyBuilder::new();
/// a.field("seed", 42).field("manager", "Mosaic");
/// let mut b = KeyBuilder::new();
/// b.field("manager", "Mosaic").field("seed", 42);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Default)]
pub struct KeyBuilder {
    pairs: Vec<(String, String)>,
}

impl KeyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `name=value` field.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already added or contains `=`/newlines —
    /// both would let two distinct field sets collapse onto one
    /// canonical rendering.
    pub fn field(&mut self, name: &str, value: impl fmt::Display) -> &mut Self {
        assert!(
            !name.contains('=') && !name.contains('\n'),
            "field name {name:?} would break canonical form"
        );
        assert!(
            self.pairs.iter().all(|(n, _)| n != name),
            "duplicate key field {name:?} (the canonical form would silently keep both)"
        );
        self.pairs.push((name.to_string(), value.to_string()));
        self
    }

    /// Sorts the fields by name and hashes the canonical rendering.
    pub fn finish(&self) -> Digest {
        let mut pairs: Vec<&(String, String)> = self.pairs.iter().collect();
        pairs.sort();
        let mut h = Hasher::new();
        for (name, value) in pairs {
            h.write(name.as_bytes());
            h.write(b"=");
            h.write(value.as_bytes());
            h.write(b"\n");
        }
        h.finish()
    }
}

/// The cache key of one `(workload, config)` simulation run under the
/// given code digest.
///
/// Covers every input of [`mosaic_gpusim::run_workload`]: the workload
/// (name and application roster), every [`RunConfig`] field that can
/// influence simulated output (via the derived `Debug` renderings, which
/// print every field with exact shortest-round-trip floats), the entry
/// format version, and the workspace code digest. Deliberately excluded,
/// and pinned as excluded by `tests/key_stability.rs`:
///
/// * `audit_every` — runtime invariant audits are side-effect free;
///   audited and unaudited runs of the same config are bit-identical.
/// * `--jobs` / `--sim-threads` — host-side execution knobs that never
///   reach [`RunConfig`]; output is byte-identical at any setting.
pub fn run_key(workload: &Workload, cfg: &RunConfig, code: Digest) -> Digest {
    let apps: Vec<&str> = workload.apps.iter().map(|p| p.name).collect();
    let mut k = KeyBuilder::new();
    k.field("format", crate::store::ENTRY_VERSION)
        .field("code", code)
        .field("workload", &workload.name)
        .field("apps", apps.join(","))
        .field("manager", format!("{:?}", cfg.manager))
        .field("fleet", format!("{:?}", cfg.fleet))
        .field("system", format!("{:?}", cfg.system))
        .field("scale", format!("{:?}", cfg.scale))
        .field("paging", format!("{:?}", cfg.paging))
        .field("seed", cfg.seed)
        .field("fragmentation", format!("{:?}", cfg.fragmentation))
        .field("oversubscription", format!("{:?}", cfg.oversubscription));
    k.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hex_round_trips() {
        let d = Digest::of(b"mosaic");
        let hex = d.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest::from_hex(&hex), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&hex[..31]), None);
        assert_eq!(d.short().len(), 12);
    }

    #[test]
    fn distinct_bytes_distinct_digests() {
        assert_ne!(Digest::of(b"a"), Digest::of(b"b"));
        assert_ne!(Digest::of(b""), Digest::of(b"\0"));
    }

    #[test]
    fn builder_is_order_invariant_but_value_sensitive() {
        let mut a = KeyBuilder::new();
        a.field("x", 1).field("y", 2);
        let mut b = KeyBuilder::new();
        b.field("y", 2).field("x", 1);
        assert_eq!(a.finish(), b.finish());
        let mut c = KeyBuilder::new();
        c.field("x", 1).field("y", 3);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    #[should_panic(expected = "duplicate key field")]
    fn builder_rejects_duplicate_fields() {
        let mut k = KeyBuilder::new();
        k.field("x", 1).field("x", 2);
    }

    #[test]
    #[should_panic(expected = "canonical form")]
    fn builder_rejects_separator_in_names() {
        let mut k = KeyBuilder::new();
        k.field("x=1", 2);
    }
}
