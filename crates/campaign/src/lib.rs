//! Campaign engine for the Mosaic reproduction: a persistent
//! content-addressed run cache plus a scenario-matrix DSL.
//!
//! The simulator is deterministic — one `(workload, RunConfig)` pair
//! always produces the same [`mosaic_gpusim::RunResult`] — so completed
//! runs are pure values that can be stored on disk and replayed for
//! free. This crate provides the three pieces that turn that observation
//! into cheap, resumable multi-point studies (DESIGN.md §13):
//!
//! * [`digest`] — stable 128-bit content digests and the cache-key
//!   derivation over `(workload, RunConfig, code-digest)`. The code
//!   digest is computed by `build.rs` over every workspace source file,
//!   so entries written by an older simulator build can never be served
//!   to a newer one.
//! * [`store`] — the disk-backed store: one atomically-written text
//!   entry per run under `objects/<key>.entry`, an advisory `index.tsv`,
//!   and corruption-tolerant loads (any mismatch is a miss, never an
//!   error).
//! * [`matrix`] — the scenario DSL: a TOML-subset file describing cross
//!   products over workloads, managers, TLB geometries, fragmentation,
//!   oversubscription, paging modes, and seeds, expanded
//!   deterministically into flat job lists.
//! * [`runner`] — deterministic report renderings (`expand` / `run` /
//!   `status`) whose output is byte-identical with the cache hot, cold,
//!   or absent.
//!
//! Execution itself stays in the experiments crate (the sweep executor
//! owns the thread pool); this crate deliberately depends only on the
//! simulator and telemetry so both the drivers and external tools can
//! link it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod digest;
pub mod matrix;
pub mod runner;
pub mod store;

pub use digest::{run_key, Digest, KeyBuilder};
pub use matrix::{Campaign, CampaignScope, ParseError, Point, SkippedPoint, Spec};
pub use runner::{render_expand, render_results, render_status, status, CampaignStatus};
pub use store::{built_code_digest, CachedRun, Store, StoreStats};
