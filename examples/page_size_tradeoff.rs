//! The page-size trade-off (Section 3 of the paper), end to end.
//!
//! Runs one application four ways and shows the two sides of the
//! trade-off Mosaic dissolves:
//!
//! * with **no demand paging** cost, 2 MB pages crush 4 KB pages
//!   (TLB reach — Figure 3);
//! * **with demand paging**, 2 MB pages transfer six-times-slower chunks
//!   over PCIe and fall behind (Figure 4);
//! * Mosaic gets the large-page TLB reach *and* the base-page transfer
//!   granularity at once.
//!
//! ```text
//! cargo run --release --example page_size_tradeoff [APP]
//! ```

use mosaic::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "CONS".to_string());
    let profile = AppProfile::by_name(&name).unwrap_or_else(|| {
        panic!("unknown application {name}; pick one of the 27 (e.g. CONS, HS, GUPS)")
    });
    let workload = Workload { name: profile.name.to_string(), apps: vec![profile] };
    println!(
        "application {} ({:?}, {} MB working set at paper scale)\n",
        profile.name, profile.suite, profile.working_set_mb
    );

    let fault_us = RunConfig::new(ManagerKind::GpuMmu4K)
        .system
        .iobus
        .uncontended_latency(PageSize::Base.bytes())
        .as_micros();
    let fault_2m_us = RunConfig::new(ManagerKind::GpuMmu4K)
        .system
        .iobus
        .uncontended_latency(PageSize::Large.bytes())
        .as_micros();
    println!(
        "far-fault load-to-use (this scale): 4KB = {fault_us:.1} us, 2MB = {fault_2m_us:.1} us\n"
    );

    let ideal =
        run_workload(&workload, RunConfig::new(ManagerKind::GpuMmu4K).preloaded().ideal_tlb());
    println!("{:<28} {:>12} {:>10} {:>10}", "configuration", "cycles", "vs ideal", "walks");
    let show = |label: &str, r: &RunResult| {
        println!(
            "{label:<28} {:>12} {:>9.2}x {:>10}",
            r.total_cycles,
            r.total_cycles as f64 / ideal.total_cycles as f64,
            r.stats.walks
        );
    };
    show("ideal TLB (no paging)", &ideal);
    show(
        "4KB pages (no paging)",
        &run_workload(&workload, RunConfig::new(ManagerKind::GpuMmu4K).preloaded()),
    );
    show(
        "2MB pages (no paging)",
        &run_workload(&workload, RunConfig::new(ManagerKind::GpuMmu2M).preloaded()),
    );
    show(
        "4KB pages + demand paging",
        &run_workload(&workload, RunConfig::new(ManagerKind::GpuMmu4K)),
    );
    show(
        "2MB pages + demand paging",
        &run_workload(&workload, RunConfig::new(ManagerKind::GpuMmu2M)),
    );
    show("Mosaic + demand paging", &run_workload(&workload, RunConfig::new(ManagerKind::mosaic())));

    println!("\n2MB pages win on translation and lose on transfer; Mosaic takes both wins.");
}
