//! Multi-application GPU sharing: the paper's Figure 8 methodology on a
//! single homogeneous workload family.
//!
//! Runs 1–4 concurrent copies of one application under GPU-MMU, Mosaic,
//! and the Ideal TLB and prints the weighted-speedup trend — showing how
//! inter-application TLB interference hurts the baseline and how Mosaic's
//! large pages restore isolation.
//!
//! ```text
//! cargo run --release --example multi_app_sharing [APP]
//! ```

use mosaic::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "HS".to_string());
    let profile =
        AppProfile::by_name(&name).unwrap_or_else(|| panic!("unknown application {name}"));
    println!(
        "sharing the GPU among 1-4 copies of {} ({})",
        profile.name,
        if profile.tlb_sensitive() { "TLB-sensitive" } else { "TLB-friendly" }
    );
    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>14}",
        "copies", "GPU-MMU", "Mosaic", "Ideal", "Mosaic gain"
    );

    for copies in 1..=4 {
        let names: Vec<&str> = vec![profile.name; copies];
        let workload = Workload::from_names(&names);
        let base = RunConfig::new(ManagerKind::GpuMmu4K);
        let alone = run_alone_baselines(&workload, base);

        let ws = |cfg: RunConfig| {
            let r = run_workload(&workload, cfg);
            weighted_speedup(&r, &alone)
        };
        let g = ws(base);
        let m = ws(RunConfig::new(ManagerKind::mosaic()));
        let i = ws(base.ideal_tlb());
        println!("{copies:<8} {g:>10.2} {m:>10.2} {i:>10.2} {:>13.1}%", (m / g - 1.0) * 100.0);
    }

    println!("\nGPU-MMU's shared L2 TLB thrashes as more applications compete for its");
    println!("512 base-page entries; each Mosaic application covers its working set");
    println!("with a handful of 2MB entries instead.");
}
