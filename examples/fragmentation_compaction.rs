//! Fragmentation and Contiguity-Aware Compaction (the paper's Section 6.4
//! stress tests), at memory-manager level — no full-GPU simulation, just
//! the allocator, the coalescer, and CAC doing their jobs.
//!
//! ```text
//! cargo run --release --example fragmentation_compaction
//! ```

use mosaic::core::FRAG_OWNER;
use mosaic::prelude::*;
use mosaic::vm::{LargePageNum, BASE_PAGES_PER_LARGE_PAGE, LARGE_PAGE_SIZE};

fn main() {
    // 64 MB of GPU memory, fully pre-fragmented: every 2MB frame already
    // holds immovable data in half of its slots.
    let mut mosaic = MosaicManager::new(MosaicConfig::with_memory(32 * LARGE_PAGE_SIZE));
    let mut rng = SimRng::from_seed(42);
    let report = mosaic.pre_fragment(1.0, 0.5, &mut rng);
    assert_eq!(report.shortfall(), 0, "the free list covers the requested fragmentation");
    println!(
        "pre-fragmented {} base pages across {} large frames (free frames: {})",
        report.injected_pages,
        mosaic.pool().total_large_frames(),
        mosaic.pool().free_frames(),
    );

    // An application arrives and allocates 4 MB en masse (2 aligned 2MB
    // chunks). There is no whole free frame anywhere...
    let app = AppId(1);
    mosaic.register_app(app);
    mosaic.reserve(app, VirtPageNum(0), 2 * BASE_PAGES_PER_LARGE_PAGE);

    // ...yet every touch succeeds: CAC compacts the fragmented frames in
    // the background, migrating their data to carve out whole frames.
    for i in 0..2 * BASE_PAGES_PER_LARGE_PAGE {
        mosaic.touch(app, VirtPageNum(i)).expect("CAC keeps allocation alive");
    }
    let stats = mosaic.stats();
    println!("\nafter touching all 1024 pages:");
    println!("  far-faults:          {}", stats.far_faults);
    println!("  coalesced 2MB pages: {}", stats.coalesces);
    println!("  CAC migrations:      {}", stats.migrations);
    println!("  frames reclaimed:    {}", mosaic.cac().frames_reclaimed());
    println!("  emergency allocs:    {}", stats.emergency_allocations);

    for lpn in [LargePageNum(0), LargePageNum(1)] {
        let coalesced = mosaic.tables().table(app).unwrap().is_coalesced(lpn);
        println!("  chunk {lpn:?} coalesced: {coalesced}");
    }

    // The fragmented data got denser in the process: count frames that
    // now hold only FRAG data vs mixed.
    let frag_frames = mosaic
        .pool()
        .tracked()
        .filter(|(_, s)| s.allocated().any(|(_, o)| o == FRAG_OWNER))
        .count();
    let app_bloat =
        mosaic.app_footprint_bytes() as f64 / mosaic.touched_bytes().max(1) as f64 - 1.0;
    println!(
        "\nfragmented data now concentrated in {frag_frames} frames; app memory bloat: {:.1}%",
        app_bloat * 100.0
    );
    println!("\nCAC turned unusable fragmented capacity into coalescible whole frames");
    println!("without the application noticing anything but a few page migrations.");
}
