//! Quickstart: run one two-application workload under the GPU-MMU
//! baseline, Mosaic, and an ideal TLB, and print the paper's
//! weighted-speedup comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mosaic::prelude::*;

fn main() {
    // A heterogeneous workload: Rodinia hotspot sharing the GPU with the
    // CUDA SDK's separable convolution — one of the paper's Figure 10
    // pairs.
    let workload = Workload::from_names(&["HS", "CONS"]);
    println!("workload: {} ({} applications)", workload.name, workload.app_count());

    // The paper's system (Table 1), scaled down so this example runs in
    // seconds; demand paging is on, as in the paper's main configuration.
    let base = RunConfig::new(ManagerKind::GpuMmu4K);
    println!(
        "system: {} SMs, {} MB GPU memory, demand paging over PCIe",
        base.system.sm_count,
        base.system.memory_bytes / (1024 * 1024),
    );

    // The weighted-speedup denominators: each application running alone
    // on its share of the SMs under the baseline configuration.
    let alone = run_alone_baselines(&workload, base);
    for a in &alone {
        println!("  alone: {:8} ipc = {:.3}", a.apps[0].name, a.apps[0].ipc);
    }

    println!(
        "\n{:<12} {:>16} {:>12} {:>12} {:>12}",
        "manager", "weighted speedup", "L1 TLB", "L2 TLB", "coalesces"
    );
    for (label, cfg) in [
        ("GPU-MMU", base),
        ("Mosaic", RunConfig::new(ManagerKind::mosaic())),
        ("Ideal TLB", base.ideal_tlb()),
    ] {
        let result = run_workload(&workload, cfg);
        let ws = weighted_speedup(&result, &alone);
        println!(
            "{label:<12} {ws:>16.3} {:>11.1}% {:>11.1}% {:>12}",
            result.stats.l1_tlb_hit_rate() * 100.0,
            result.stats.l2_tlb_hit_rate() * 100.0,
            result.stats.manager.coalesces,
        );
    }
    println!("\nMosaic recovers most of the translation overhead by coalescing each");
    println!("application's en-masse allocations into 2MB TLB entries — without");
    println!("migrating a single byte.");
}
