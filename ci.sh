#!/usr/bin/env bash
# Local CI gate: formatting, lints, the determinism/invariant policy
# scanner, and the full test suite. Run from the repository root; any
# failing step fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mosaic-audit self-test (rule corpus, mutation tripwires, closure pins)"
cargo test -q -p mosaic-audit

echo "==> mosaic-audit check (determinism & invariants policy)"
mkdir -p target/audit
cargo run -q -p mosaic-audit -- check
cargo run -q -p mosaic-audit -- check --format json > target/audit/findings.json
cargo run -q -p mosaic-audit -- graph --format json > target/audit/closure.json
echo "    artifacts: target/audit/findings.json, target/audit/closure.json"

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo build --release"
cargo build -q --release --workspace

echo "==> bench-smoke (wall-time regression gate vs committed BENCH.json)"
cargo run -q --release -p mosaic-bench -- --quick --no-out --check BENCH.json

echo "==> campaign-smoke (run cache: cold/warm/no-cache byte-identity and warm speedup)"
rm -rf target/campaign-cache
t0=$(date +%s%N)
target/release/reproduce --jobs 1 --cache-dir target/campaign-cache \
    campaign run campaigns/smoke.toml > target/campaign-cold.txt 2> target/campaign-cold.err
t1=$(date +%s%N)
target/release/reproduce --jobs 1 --cache-dir target/campaign-cache \
    campaign run campaigns/smoke.toml > target/campaign-warm.txt 2> target/campaign-warm.err
t2=$(date +%s%N)
target/release/reproduce --jobs 1 --no-cache \
    campaign run campaigns/smoke.toml > target/campaign-nocache.txt
diff target/campaign-cold.txt target/campaign-warm.txt
diff target/campaign-cold.txt target/campaign-nocache.txt
grep -Eq '[1-9][0-9]* hits, 0 misses' target/campaign-warm.err
cold_ms=$(( (t1 - t0) / 1000000 ))
warm_ms=$(( (t2 - t1) / 1000000 ))
echo "    cold ${cold_ms}ms, warm ${warm_ms}ms (100% hits), reports byte-identical"
test "$cold_ms" -ge $(( warm_ms * 10 ))

echo "==> conformance fuzz (differential oracles, bounded deterministic run)"
cargo run -q --release -p mosaic-conformance -- fuzz --cases 256 --seed 0xC0FFEE

echo "==> smoke sweep (parallel reproduce run)"
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- fig03 fig08

echo "==> sim-threads-smoke (sharded engine bit-identity: fig08 at N=4 vs N=1)"
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- \
    --sim-threads 1 fig08 > target/sim-threads-n1.txt
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- \
    --sim-threads 4 fig08 > target/sim-threads-n4.txt
diff target/sim-threads-n1.txt target/sim-threads-n4.txt
echo "    fig08 byte-identical at --sim-threads 1 and 4"

echo "==> multigpu-smoke (fleet scale-out: byte-diff across the parallelism matrix + pinned digest)"
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- \
    --digest --jobs 1 --sim-threads 1 multigpu > target/multigpu-serial.txt
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- \
    --digest --jobs 4 --sim-threads 2 multigpu > target/multigpu-parallel.txt
diff target/multigpu-serial.txt target/multigpu-parallel.txt
# The golden constant from tests/parallel_determinism.rs: the determinism
# contract for the whole scale-out path (placement, interconnect,
# migration payloads, remote/migrate stall attribution).
grep -q 'digest multigpu eea524f5b009c7d8' target/multigpu-serial.txt
echo "    multigpu byte-identical across the matrix, digest matches the golden pin"

echo "==> oversubscription smoke (demand-paging engine: evict, write back, prefetch)"
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- oversub

echo "==> trace-smoke (record a traced sweep, validate the JSONL, round-trip to Chrome)"
MOSAIC_SCOPE=smoke cargo run -q --release -p mosaic-experiments --bin reproduce -- \
    --trace target/trace-smoke.jsonl --stall-report
cargo run -q --release -p mosaic-telemetry --bin mosaic-trace -- validate target/trace-smoke.jsonl
cargo run -q --release -p mosaic-telemetry --bin mosaic-trace -- \
    chrome target/trace-smoke.jsonl -o target/trace-smoke.chrome.json

echo "CI green."
